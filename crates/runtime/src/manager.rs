//! The Execute stage and the full MAPE-K loop.

use crate::envelope::SafetyEnvelope;
use crate::faults::{self, FaultDefense, FaultPlan, OperatingState};
use crate::monitor::{RiskEstimator, RiskEstimatorConfig};
use crate::policy::Policy;
use crate::record::{RunResult, TickRecord};
use crate::{Result, RuntimeError};
use reprune_nn::dataset::{render_scene, SceneContext, SCENE_CLASSES};
use reprune_nn::{ExecPlan, Network, Scratch};
use reprune_platform::profile::NetworkProfile;
use reprune_platform::{
    Bytes, InferenceCost, Joules, Seconds, SocModel, StorageError, StorageHealth,
};
use reprune_prune::{
    ladder_plans, weights_checksum, PruneError, ReversiblePruner, SnapshotRestore, SparsityLadder,
};
use reprune_scenario::{FaultEvent, FaultKind, OddSpec, Scenario, Tick, Weather};
use reprune_tensor::rng::Prng;
use serde::{Deserialize, Serialize};

/// How the runtime restores capacity when it lowers the ladder level.
///
/// All three mechanisms end in the same weights (the simulator uses the
/// reversal log for state in every case); they differ in the *platform
/// cost* charged and therefore in how long the network stays degraded —
/// which is exactly what experiment F4 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RestoreMechanism {
    /// The paper's reversal log: O(#evicted) scattered writes.
    DeltaLog,
    /// Full in-RAM snapshot copy.
    Snapshot,
    /// Reload the model image from storage (the conventional baseline for
    /// irreversible pruning).
    StorageReload,
}

impl std::fmt::Display for RestoreMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RestoreMechanism::DeltaLog => "delta-log",
            RestoreMechanism::Snapshot => "snapshot",
            RestoreMechanism::StorageReload => "storage-reload",
        };
        write!(f, "{s}")
    }
}

/// Scale factor mapping the tiny trainable reference model to a
/// deployment-scale perception network (DESIGN.md §5): MACs, weight
/// bytes, and log entries are all multiplied by `factor` when charging
/// platform costs. Accuracy is always measured on the real (small) model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentScale {
    /// Multiplier on MACs / bytes / log entries.
    pub factor: f64,
}

impl Default for DeploymentScale {
    fn default() -> Self {
        // ~54k-param reference CNN × 150 ≈ an 8M-param (33 MB) perception
        // network — ResNet-18 class, the size automotive stacks deploy.
        DeploymentScale { factor: 150.0 }
    }
}

/// Pre-profiled cost of running at one ladder level (the MAPE-K Knowledge
/// base).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelKnowledge {
    /// Ladder level.
    pub level: usize,
    /// Nominal sparsity.
    pub sparsity: f64,
    /// Deployment-scale inference cost at this level.
    pub inference: InferenceCost,
    /// Reversal-log entries held when parked at this level (scaled).
    pub log_entries: usize,
}

/// Configuration of the runtime manager.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeManagerConfig {
    /// Adaptation policy.
    pub policy: Policy,
    /// Safety envelope over the ladder.
    pub envelope: SafetyEnvelope,
    /// Risk-estimator (Monitor) configuration.
    pub estimator: RiskEstimatorConfig,
    /// Restore mechanism to charge.
    pub mechanism: RestoreMechanism,
    /// Deployment scaling of platform costs.
    pub scale: DeploymentScale,
    /// Platform model.
    pub soc: SocModel,
    /// Seed for per-tick frame rendering.
    pub frame_seed: u64,
    /// Operational Design Domain: outside it the runtime forces full
    /// capacity regardless of the policy (minimal-risk response).
    pub odd: OddSpec,
    /// How much of the fault-tolerance machinery is armed
    /// (see [`FaultDefense`]).
    pub defense: FaultDefense,
}

impl RuntimeManagerConfig {
    /// A reasonable default configuration for a given envelope.
    pub fn new(policy: Policy, envelope: SafetyEnvelope) -> Self {
        RuntimeManagerConfig {
            policy,
            envelope,
            estimator: RiskEstimatorConfig::default(),
            mechanism: RestoreMechanism::DeltaLog,
            scale: DeploymentScale::default(),
            soc: SocModel::jetson_class(),
            frame_seed: 0,
            odd: OddSpec::permissive(),
            defense: FaultDefense::FullChain,
        }
    }

    /// Sets the restore mechanism.
    pub fn mechanism(mut self, mechanism: RestoreMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Sets the frame-rendering seed.
    pub fn frame_seed(mut self, seed: u64) -> Self {
        self.frame_seed = seed;
        self
    }

    /// Sets the estimator configuration.
    pub fn estimator(mut self, estimator: RiskEstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the platform model.
    pub fn soc(mut self, soc: SocModel) -> Self {
        self.soc = soc;
        self
    }

    /// Sets the deployment scale factor.
    pub fn scale(mut self, factor: f64) -> Self {
        self.scale = DeploymentScale { factor };
        self
    }

    /// Sets the Operational Design Domain.
    pub fn odd(mut self, odd: OddSpec) -> Self {
        self.odd = odd;
        self
    }

    /// Sets the fault-defense tier.
    pub fn defense(mut self, defense: FaultDefense) -> Self {
        self.defense = defense;
        self
    }
}

/// Maps scenario weather to the dataset rendering context.
pub fn weather_to_context(weather: Weather) -> SceneContext {
    match weather {
        Weather::Clear => SceneContext::Clear,
        Weather::Rain => SceneContext::Rain,
        Weather::Night => SceneContext::Night,
        Weather::Fog => SceneContext::Fog,
    }
}

struct PendingRestore {
    target: usize,
    ready_at: f64,
}

/// Ladder cap applied while [`OperatingState::Degraded`]: no pruning
/// deeper than one level until the system is verified clean.
const DEGRADED_MAX_LEVEL: usize = 1;

/// Initial retry backoff after a refused storage reload, seconds.
const RELOAD_BACKOFF_MIN_S: f64 = 0.2;

/// Backoff ceiling for storage-reload retries, seconds.
const RELOAD_BACKOFF_MAX_S: f64 = 6.4;

/// What repair/fallback hops charged during one tick, and whether
/// detection or repair fired.
#[derive(Default)]
struct ChainReport {
    latency: Seconds,
    energy: Joules,
    detected: bool,
    repaired: bool,
}

/// The MAPE-K runtime manager: owns the network, the reversible pruner,
/// and the control loop that drives them through a scenario.
pub struct RuntimeManager {
    net: Network,
    pruner: ReversiblePruner,
    /// Packed live-row execution plan per ladder level: pruned-level
    /// inference iterates only surviving GEMM rows.
    plans: Vec<ExecPlan>,
    /// Arena for the allocation-free inference path; lives as long as the
    /// manager so steady-state ticks reuse every buffer.
    scratch: Scratch,
    config: RuntimeManagerConfig,
    knowledge: Vec<LevelKnowledge>,
    estimator: RiskEstimator,
    frame_rng: Prng,
    pending: Option<PendingRestore>,
    last_confidence: f64,
    model_bytes: Bytes,
    transitions: usize,
    // --- Fault campaign state. ---
    plan: Option<FaultPlan>,
    storage: StorageHealth,
    /// Base weight image captured at attach: serves both as the in-RAM
    /// snapshot fallback and as the (pristine) storage model image.
    snapshot: SnapshotRestore,
    /// Bit-flips that have landed in the in-RAM snapshot region; applied
    /// to the restored weights when the snapshot hop is used.
    snapshot_flips: u32,
    /// RNG realizing snapshot-region corruption deterministically.
    corruption_rng: Prng,
    op_state: OperatingState,
    /// Sealed whole-weights checksum, re-verified every tick when the
    /// defense includes checksums; resealed after every trusted
    /// transition.
    sealed_checksum: u64,
    /// Live weights are known to disagree with the sealed checksum.
    integrity_bad: bool,
    /// The reversal log holds a detected-but-unrepaired corrupt segment.
    log_bad: bool,
    /// Ground-truth twin: same commanded levels, never faulted. A tick's
    /// inference is *corrupt* iff the live weights differ from the twin's.
    mirror_net: Network,
    mirror_pruner: ReversiblePruner,
    mirror_checksum: u64,
    manual_sensor_failed: bool,
    manual_confidence_failed: bool,
    sensor_fault_until: f64,
    confidence_fault_until: f64,
    overrun_until: f64,
    overrun_extra_s: f64,
    reload_wanted: bool,
    pending_reload: Option<f64>,
    reload_backoff_s: f64,
    next_reload_attempt_s: f64,
    faults_injected: usize,
    faults_detected: usize,
    faults_repaired: usize,
    fault_onset: Option<f64>,
    fault_recoveries: Vec<f64>,
}

impl RuntimeManager {
    /// Attaches the runtime to a trained network with a pre-built ladder.
    ///
    /// Profiles every ladder level once (the Knowledge base).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if the envelope's level count
    /// disagrees with the ladder, or propagates profiling errors.
    pub fn attach(
        net: Network,
        ladder: SparsityLadder,
        config: RuntimeManagerConfig,
    ) -> Result<Self> {
        if config.envelope.levels() != ladder.num_levels() {
            return Err(RuntimeError::bad_config(format!(
                "envelope governs {} levels but ladder has {}",
                config.envelope.levels(),
                ladder.num_levels()
            )));
        }
        let input_dims = [1, reprune_nn::dataset::SCENE_SIZE, reprune_nn::dataset::SCENE_SIZE];
        let mut knowledge = Vec::with_capacity(ladder.num_levels());
        for k in 0..ladder.num_levels() {
            let level = ladder.level(k)?;
            let profile = NetworkProfile::of_masked(&net, &input_dims, Some(&level.masks))?
                .scaled(config.scale.factor);
            knowledge.push(LevelKnowledge {
                level: k,
                sparsity: level.sparsity,
                inference: config.soc.inference_cost(&profile),
                log_entries: (level.masks.pruned_count() as f64 * config.scale.factor) as usize,
            });
        }
        let model_bytes = Bytes(
            (net.prunable_layers()
                .iter()
                .map(|m| m.weight_len() * 4)
                .sum::<usize>() as f64
                * config.scale.factor) as u64,
        );
        let plans = ladder_plans(&net, &ladder)?;
        let mirror_net = net.clone();
        let mirror_pruner = ReversiblePruner::attach(&mirror_net, ladder.clone())?;
        let mut pruner = ReversiblePruner::attach(&net, ladder)?;
        match config.defense {
            FaultDefense::None => pruner.set_verify_on_pop(false),
            FaultDefense::ChecksumOnly => {}
            FaultDefense::FullChain => pruner.set_shadow_mode(true),
        }
        let snapshot = SnapshotRestore::capture(&net);
        let sealed_checksum = weights_checksum(&net);
        Ok(RuntimeManager {
            estimator: RiskEstimator::new(config.estimator),
            frame_rng: Prng::new(config.frame_seed),
            corruption_rng: Prng::new(config.frame_seed ^ 0xc0_44u64),
            mirror_checksum: sealed_checksum,
            net,
            pruner,
            plans,
            scratch: Scratch::new(),
            knowledge,
            pending: None,
            last_confidence: 1.0,
            model_bytes,
            transitions: 0,
            plan: None,
            storage: StorageHealth::new(),
            snapshot,
            snapshot_flips: 0,
            op_state: OperatingState::Normal,
            sealed_checksum,
            integrity_bad: false,
            log_bad: false,
            mirror_net,
            mirror_pruner,
            manual_sensor_failed: false,
            manual_confidence_failed: false,
            sensor_fault_until: f64::NEG_INFINITY,
            confidence_fault_until: f64::NEG_INFINITY,
            overrun_until: f64::NEG_INFINITY,
            overrun_extra_s: 0.0,
            reload_wanted: false,
            pending_reload: None,
            reload_backoff_s: RELOAD_BACKOFF_MIN_S,
            next_reload_attempt_s: f64::NEG_INFINITY,
            faults_injected: 0,
            faults_detected: 0,
            faults_repaired: 0,
            fault_onset: None,
            fault_recoveries: Vec::new(),
            config,
        })
    }

    /// The per-level Knowledge base.
    pub fn knowledge(&self) -> &[LevelKnowledge] {
        &self.knowledge
    }

    /// Current effective ladder level.
    pub fn current_level(&self) -> usize {
        self.pruner.current_level()
    }

    /// Shared access to the managed network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Number of ladder transitions executed so far.
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    /// Injects or clears a risk-sensor failure (failure injection for
    /// resilience testing). While failed, the Monitor drives the estimate
    /// toward the configured fail-safe risk, which makes the adaptive
    /// policy restore capacity.
    pub fn set_sensor_failed(&mut self, failed: bool) {
        self.manual_sensor_failed = failed;
        self.estimator.set_sensor_failed(failed);
    }

    /// Injects or clears a confidence-signal dropout. While failed, the
    /// Monitor charges the worst-case confidence deficit (fail-safe).
    pub fn set_confidence_failed(&mut self, failed: bool) {
        self.manual_confidence_failed = failed;
        self.estimator.set_confidence_failed(failed);
    }

    /// Installs a fault campaign to execute against the next run. Pass
    /// `None` to clear. When no plan is installed,
    /// [`RuntimeManager::run`] builds one automatically from the
    /// scenario's scheduled faults.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    /// Current rung of the degradation state machine.
    pub fn op_state(&self) -> OperatingState {
        self.op_state
    }

    /// Health of the model-image storage device.
    pub fn storage(&self) -> &StorageHealth {
        &self.storage
    }

    /// Effective fault injections so far (windows at onset; bit-flips
    /// that actually landed).
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }

    /// Faults the armed defense noticed.
    pub fn faults_detected(&self) -> usize {
        self.faults_detected
    }

    /// Faults resolved by repair or a successful fallback restore.
    pub fn faults_repaired(&self) -> usize {
        self.faults_repaired
    }

    fn restore_latency(&self, entries_restored: usize) -> Seconds {
        match self.config.mechanism {
            RestoreMechanism::DeltaLog => self
                .config
                .soc
                .delta_restore_latency((entries_restored as f64 * self.config.scale.factor) as usize),
            RestoreMechanism::Snapshot => {
                self.config.soc.snapshot_restore_latency(self.model_bytes)
            }
            RestoreMechanism::StorageReload => {
                self.config.soc.storage_reload_latency(self.model_bytes)
            }
        }
    }

    fn restore_energy(&self, entries_restored: usize) -> Joules {
        match self.config.mechanism {
            RestoreMechanism::DeltaLog => self
                .config
                .soc
                .delta_restore_energy((entries_restored as f64 * self.config.scale.factor) as usize),
            RestoreMechanism::Snapshot => {
                let lat = self.config.soc.snapshot_restore_latency(self.model_bytes);
                Joules(
                    2.0 * self.model_bytes.as_f64() * self.config.soc.energy_per_dram_byte
                        + lat.0 * self.config.soc.idle_power_watts,
                )
            }
            RestoreMechanism::StorageReload => {
                self.config.soc.storage_reload_energy(self.model_bytes)
            }
        }
    }

    /// Reseals the whole-weights checksum after a trusted transition.
    fn reseal(&mut self) {
        self.sealed_checksum = weights_checksum(&self.net);
    }

    /// Whether any self-announcing fault window is active at `t`.
    fn windows_active(&self, t: f64) -> bool {
        t < self.sensor_fault_until
            || t < self.confidence_fault_until
            || t < self.overrun_until
            || self.storage.is_unavailable_at(t)
            || self.storage.bandwidth_factor_at(t) < 1.0
    }

    /// Escalates the degradation state machine (never de-escalates).
    fn enter_state(&mut self, state: OperatingState, t: f64) {
        if state > self.op_state {
            if self.op_state == OperatingState::Normal && self.fault_onset.is_none() {
                self.fault_onset = Some(t);
            }
            self.op_state = state;
        }
    }

    /// De-escalates once the triggering conditions have cleared:
    /// `MinimalRisk → Degraded` when full capacity is reached and
    /// verified, `Degraded → Normal` when nothing is unresolved and no
    /// fault window is active.
    fn relax_state(&mut self, t: f64) {
        // A bit-exact level-0 state clears a weights-integrity flag even
        // without the repair chain: the attach-time base checksum is a
        // known-good reference at full capacity.
        if self.integrity_bad
            && self.pending_reload.is_none()
            && self.pruner.current_level() == 0
            && self.pruner.verify_restored(&self.net).is_ok()
        {
            self.integrity_bad = false;
            self.reseal();
        }
        let unresolved = self.integrity_bad
            || self.log_bad
            || self.reload_wanted
            || self.pending_reload.is_some();
        if self.op_state == OperatingState::MinimalRisk
            && !unresolved
            && self.pruner.current_level() == 0
        {
            self.op_state = OperatingState::Degraded;
        }
        if self.op_state == OperatingState::Degraded && !unresolved && !self.windows_active(t) {
            self.op_state = OperatingState::Normal;
            if let Some(onset) = self.fault_onset.take() {
                self.fault_recoveries.push(t - onset);
            }
        }
    }

    /// Realizes one scheduled fault event against the live system.
    fn apply_fault(
        &mut self,
        ev: &FaultEvent,
        rng: &mut Prng,
        injected: &mut u32,
        detected: &mut bool,
    ) {
        // Window faults are self-announcing: an armed health monitor
        // notices them at onset. Bit-flips are only caught by checksums.
        let armed = self.config.defense != FaultDefense::None;
        let mut announce = |this: &mut Self| {
            *injected += 1;
            if armed {
                *detected = true;
                this.faults_detected += 1;
            }
        };
        match ev.kind {
            FaultKind::SensorBlackout { duration_s } => {
                self.sensor_fault_until = self.sensor_fault_until.max(ev.start_s + duration_s);
                announce(self);
            }
            FaultKind::ConfidenceDropout { duration_s } => {
                self.confidence_fault_until =
                    self.confidence_fault_until.max(ev.start_s + duration_s);
                announce(self);
            }
            FaultKind::StorageTransient { duration_s } => {
                self.storage.inject_transient(ev.start_s, duration_s);
                announce(self);
            }
            FaultKind::StoragePermanent => {
                self.storage.fail_permanently();
                announce(self);
            }
            FaultKind::StorageDegraded {
                bandwidth_factor,
                duration_s,
            } => {
                self.storage
                    .inject_degradation(ev.start_s, duration_s, bandwidth_factor);
                announce(self);
            }
            FaultKind::ExecOverrun {
                extra_ms,
                duration_s,
            } => {
                self.overrun_until = self.overrun_until.max(ev.start_s + duration_s);
                self.overrun_extra_s = extra_ms / 1000.0;
                announce(self);
            }
            FaultKind::LogBitFlip { flips } => {
                for _ in 0..flips {
                    if self.pruner.inject_log_bitflip(rng) {
                        *injected += 1;
                    }
                }
            }
            FaultKind::WeightBitFlip { flips } => {
                // The in-RAM snapshot occupies as much DRAM as the live
                // weights, so an upset is equally likely to land in
                // either region (the snapshot damage only surfaces when
                // the snapshot hop is used).
                for _ in 0..flips {
                    if rng.next_bool(0.5) {
                        self.snapshot_flips += 1;
                        *injected += 1;
                    } else if faults::inject_weight_bitflip(&mut self.net, rng) {
                        *injected += 1;
                    }
                }
            }
        }
    }

    /// Applies `target` through the restore fallback chain:
    /// delta restore → shadow repair + retry → in-RAM snapshot →
    /// storage reload (scheduled with backoff by the caller's tick loop).
    fn set_level_chain(&mut self, target: usize, t: f64) -> Result<ChainReport> {
        let mut rep = ChainReport::default();
        let mut repairs = 0usize;
        loop {
            match self.pruner.set_level(&mut self.net, target) {
                Ok(tr) => {
                    if tr.from != tr.to {
                        self.transitions += 1;
                        self.reseal();
                    }
                    return Ok(rep);
                }
                Err(PruneError::LogCorruption { segment, .. }) => {
                    rep.detected = true;
                    if !self.log_bad {
                        self.faults_detected += 1;
                    }
                    self.enter_state(OperatingState::Degraded, t);
                    if self.config.defense != FaultDefense::FullChain {
                        // Checksum-only: detected but unrepairable. The
                        // log below the corrupt segment is unusable, so
                        // full capacity is unreachable: minimal risk.
                        self.log_bad = true;
                        self.enter_state(OperatingState::MinimalRisk, t);
                        return Ok(rep);
                    }
                    repairs += 1;
                    if repairs <= self.pruner.log_segments() + 1
                        && self.pruner.repair_segment(segment).is_ok()
                    {
                        // Hop 2: shadow-copy repair, then retry the
                        // delta restore. The repair rewrites the
                        // segment, priced as one more delta pass.
                        rep.repaired = true;
                        self.faults_repaired += 1;
                        self.log_bad = false;
                        rep.latency += self.config.soc.delta_restore_latency(
                            (self.entries_between(target, self.pruner.current_level()) as f64
                                * self.config.scale.factor) as usize,
                        );
                        continue;
                    }
                    // Hop 3: in-RAM snapshot (storage reload inside if
                    // the snapshot is itself corrupt).
                    self.log_bad = true;
                    self.fallback_snapshot(t, &mut rep)?;
                    return Ok(rep);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Hop 3 of the chain: full restore from the in-RAM snapshot. Falls
    /// through to a storage reload when the snapshot region was hit by
    /// bit-flips (caught by the attach-time base checksum).
    fn fallback_snapshot(&mut self, t: f64, rep: &mut ChainReport) -> Result<()> {
        let lat = self.config.soc.snapshot_restore_latency(self.model_bytes);
        rep.latency += lat;
        rep.energy += Joules(
            2.0 * self.model_bytes.as_f64() * self.config.soc.energy_per_dram_byte
                + lat.0 * self.config.soc.idle_power_watts,
        );
        self.snapshot.restore(&mut self.net)?;
        // The snapshot region is DRAM too: flips that landed there
        // surface in the restored copy.
        for _ in 0..self.snapshot_flips {
            faults::inject_weight_bitflip(&mut self.net, &mut self.corruption_rng);
        }
        match self.pruner.adopt_full_restore(&self.net) {
            Ok(()) => {
                self.transitions += 1;
                self.log_bad = false;
                self.integrity_bad = false;
                self.reseal();
                rep.repaired = true;
                self.faults_repaired += 1;
                Ok(())
            }
            Err(PruneError::IntegrityViolation { .. }) => {
                // Hop 4: the snapshot is corrupt too — reload the model
                // image from storage.
                rep.detected = true;
                self.faults_detected += 1;
                self.integrity_bad = true;
                self.enter_state(OperatingState::MinimalRisk, t);
                self.reload_wanted = true;
                self.try_storage_reload(t, rep);
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Hop 4: schedule a full model-image reload from storage, backing
    /// off exponentially (bounded) while the device refuses reads.
    fn try_storage_reload(&mut self, t: f64, rep: &mut ChainReport) {
        if self.pending_reload.is_some() {
            return;
        }
        match self
            .storage
            .read_latency(&self.config.soc, self.model_bytes, t)
        {
            Ok(lat) => {
                rep.latency += lat;
                rep.energy += self.config.soc.storage_reload_energy(self.model_bytes);
                self.pending_reload = Some(t + lat.0);
                self.reload_backoff_s = RELOAD_BACKOFF_MIN_S;
            }
            Err(StorageError::TransientFailure) => {
                self.next_reload_attempt_s = t + self.reload_backoff_s;
                self.reload_backoff_s = (self.reload_backoff_s * 2.0).min(RELOAD_BACKOFF_MAX_S);
            }
            Err(StorageError::PermanentFailure) => {
                // No reload will ever succeed; the state machine keeps
                // the system parked in minimal risk.
                self.next_reload_attempt_s = f64::INFINITY;
            }
        }
    }

    /// Completes a scheduled storage reload: the image that crossed the
    /// storage bus is pristine, so this always rebases cleanly.
    fn complete_storage_reload(&mut self) -> Result<()> {
        self.snapshot.restore(&mut self.net)?;
        self.pruner.adopt_full_restore(&self.net)?;
        self.transitions += 1;
        self.reload_wanted = false;
        self.integrity_bad = false;
        self.log_bad = false;
        // Reloading also refreshes the in-RAM snapshot copy.
        self.snapshot_flips = 0;
        self.reseal();
        self.faults_repaired += 1;
        Ok(())
    }

    /// Runs one MAPE-K iteration for a scenario tick, returning the
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates pruning/inference errors.
    pub fn step(&mut self, tick: &Tick, dt: f64) -> Result<TickRecord> {
        let mut transition_latency = Seconds::ZERO;
        let mut transition_energy = Joules::ZERO;
        // Work done synchronously inside this tick, counted against the
        // control deadline (scheduled multi-tick restores are not).
        let mut sync_latency = 0.0f64;
        let mut tick_injected = 0u32;
        let mut tick_detected = false;
        let mut tick_repaired = false;

        // --- Fault injection: fire scheduled events up to this tick. ---
        if let Some(mut plan) = self.plan.take() {
            for ev in plan.fire_until(tick.t) {
                self.apply_fault(&ev, plan.rng_mut(), &mut tick_injected, &mut tick_detected);
            }
            self.plan = Some(plan);
        }
        self.faults_injected += tick_injected as usize;
        // Monitor channels follow manual overrides OR scheduled windows.
        self.estimator
            .set_sensor_failed(self.manual_sensor_failed || tick.t < self.sensor_fault_until);
        self.estimator.set_confidence_failed(
            self.manual_confidence_failed || tick.t < self.confidence_fault_until,
        );
        // An armed health monitor pins the system at least at Degraded
        // while any fault window is active.
        if self.config.defense != FaultDefense::None && self.windows_active(tick.t) {
            self.enter_state(OperatingState::Degraded, tick.t);
        }

        // --- Complete or retry a pending storage reload. ---
        if let Some(ready) = self.pending_reload {
            if tick.t + 1e-9 >= ready {
                self.pending_reload = None;
                self.complete_storage_reload()?;
                tick_repaired = true;
            }
        }
        if self.reload_wanted
            && self.pending_reload.is_none()
            && tick.t >= self.next_reload_attempt_s
        {
            let mut rep = ChainReport::default();
            self.try_storage_reload(tick.t, &mut rep);
            transition_latency += rep.latency;
            transition_energy += rep.energy;
        }

        // --- Defense: background scrub + sealed-checksum verification. ---
        if self.config.defense == FaultDefense::FullChain && self.pending_reload.is_none() {
            if let Err(PruneError::LogCorruption { segment, .. }) = self.pruner.scrub_step() {
                tick_detected = true;
                self.faults_detected += 1;
                self.enter_state(OperatingState::Degraded, tick.t);
                if self.pruner.repair_segment(segment).is_ok() {
                    tick_repaired = true;
                    self.faults_repaired += 1;
                } else {
                    self.log_bad = true;
                }
            }
        }
        if self.config.defense != FaultDefense::None
            && self.pending_reload.is_none()
            && !self.integrity_bad
            && weights_checksum(&self.net) != self.sealed_checksum
        {
            tick_detected = true;
            self.faults_detected += 1;
            self.integrity_bad = true;
            self.enter_state(OperatingState::Degraded, tick.t);
            if self.config.defense == FaultDefense::FullChain {
                let mut rep = ChainReport::default();
                self.fallback_snapshot(tick.t, &mut rep)?;
                transition_latency += rep.latency;
                transition_energy += rep.energy;
                sync_latency += rep.latency.0;
                tick_repaired |= rep.repaired;
            } else {
                // Detected but unrepairable: force minimal risk.
                self.enter_state(OperatingState::MinimalRisk, tick.t);
            }
        }

        // --- Complete a pending (multi-tick) ladder restore. ---
        if self.pending_reload.is_none() {
            if let Some(p) = &self.pending {
                if tick.t + 1e-9 >= p.ready_at {
                    let target = p.target;
                    self.pending = None;
                    let rep = self.set_level_chain(target, tick.t)?;
                    transition_latency += rep.latency;
                    transition_energy += rep.energy;
                    sync_latency += rep.latency.0;
                    tick_detected |= rep.detected;
                    tick_repaired |= rep.repaired;
                }
            }
        }

        // Monitor: fuse risk sensor + last confidence.
        let estimated = self.estimator.observe(tick.risk, self.last_confidence);

        // Analyze + Plan (degradation states cap the planned level).
        let current = self.effective_level();
        let inside_odd = self.config.odd.contains(tick);
        let planned = if inside_odd {
            self.config.policy.decide(&self.config.envelope, estimated, tick.risk, current)
        } else {
            // Outside the ODD the safety case does not cover degraded
            // perception: minimal-risk response is full capacity.
            0
        };
        let target = match self.op_state {
            OperatingState::Normal => planned,
            OperatingState::Degraded => planned.min(DEGRADED_MAX_LEVEL),
            OperatingState::MinimalRisk => 0,
        };

        // Execute (blocked while a full storage reload is in flight).
        if self.pending_reload.is_some() {
            // Nothing: the network serves as-is until the image arrives.
        } else if self.pending.is_none() && target != self.pruner.current_level() {
            if target > self.pruner.current_level() {
                // Pruning deeper: in-place mask application, sub-tick cost.
                let before = self.pruner.log_entries();
                let t = self.pruner.set_level(&mut self.net, target)?;
                if t.from != t.to {
                    self.transitions += 1;
                }
                self.reseal();
                let pushed = self.pruner.log_entries() - before;
                let lat = self
                    .config
                    .soc
                    .delta_restore_latency((pushed as f64 * self.config.scale.factor) as usize);
                transition_latency += lat;
                sync_latency += lat.0;
                transition_energy += self.restore_energy(pushed);
            } else {
                // Restoring capacity: charge the configured mechanism.
                let entries = self.entries_between(target, self.pruner.current_level());
                let latency = self.restore_latency(entries);
                transition_latency += latency;
                transition_energy += self.restore_energy(entries);
                if latency.0 <= dt {
                    sync_latency += latency.0;
                    let rep = self.set_level_chain(target, tick.t)?;
                    transition_latency += rep.latency;
                    transition_energy += rep.energy;
                    sync_latency += rep.latency.0;
                    tick_detected |= rep.detected;
                    tick_repaired |= rep.repaired;
                } else {
                    self.pending = Some(PendingRestore {
                        target,
                        ready_at: tick.t + latency.0,
                    });
                }
            }
        } else if let Some(p) = &mut self.pending {
            // A deeper emergency while already restoring: retarget lower.
            if target < p.target {
                p.target = target;
            }
        }

        // Ground-truth twin follows the same effective level, fault-free.
        let lvl = self.pruner.current_level();
        if self.mirror_pruner.current_level() != lvl {
            self.mirror_pruner.set_level(&mut self.mirror_net, lvl)?;
            self.mirror_checksum = weights_checksum(&self.mirror_net);
        }

        // Perception: render a frame for the current context and classify.
        let context = weather_to_context(tick.weather);
        let label = self.frame_rng.next_below(SCENE_CLASSES);
        let sample = render_scene(label, context, &mut self.frame_rng);
        let (pred, confidence) =
            self.net
                .predict_with(&sample.input, self.plans.get(lvl), &mut self.scratch)?;
        self.last_confidence = confidence as f64;

        // Ground truth (experiment-side, invisible to the defense): did
        // this inference run on weights that differ from the twin's?
        let corrupt_inference = weights_checksum(&self.net) != self.mirror_checksum;

        // De-escalate once fault triggers have cleared.
        self.relax_state(tick.t);

        let effective = self.effective_level();
        let k = &self.knowledge[effective];
        let overrun = if tick.t < self.overrun_until {
            self.overrun_extra_s
        } else {
            0.0
        };
        let inference_latency = Seconds(k.inference.latency.0 + overrun);
        let max_allowed = self.config.envelope.max_level(tick.risk);
        let violation = effective > max_allowed
            || (!inside_odd && effective > 0)
            || (self.op_state == OperatingState::MinimalRisk
                && (effective > 0 || self.integrity_bad));
        Ok(TickRecord {
            t: tick.t,
            true_risk: tick.risk,
            estimated_risk: estimated,
            level: effective,
            sparsity: k.sparsity,
            max_allowed_level: max_allowed,
            odd_exit: !inside_odd,
            violation,
            correct: pred == label,
            confidence: confidence as f64,
            inference_energy: k.inference.energy,
            inference_latency,
            transition_energy,
            transition_latency,
            segment: tick.segment,
            weather: tick.weather,
            op_state: self.op_state,
            faults_injected: tick_injected,
            fault_detected: tick_detected,
            fault_repaired: tick_repaired,
            corrupt_inference,
            deadline_miss: inference_latency.0 + sync_latency > dt,
        })
    }

    /// Level currently *effective* for safety purposes: while a restore is
    /// pending the network still runs degraded.
    fn effective_level(&self) -> usize {
        self.pruner.current_level()
    }

    fn entries_between(&self, low: usize, high: usize) -> usize {
        let a = self
            .pruner
            .ladder()
            .level(low)
            .map(|l| l.masks.pruned_count())
            .unwrap_or(0);
        let b = self
            .pruner
            .ladder()
            .level(high)
            .map(|l| l.masks.pruned_count())
            .unwrap_or(0);
        b.saturating_sub(a)
    }

    /// Drives a whole scenario, returning per-tick records and aggregates.
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run(&mut self, scenario: &Scenario) -> Result<RunResult> {
        // Faults scheduled on the scenario become the campaign, unless a
        // plan was installed explicitly.
        if self.plan.is_none() && !scenario.faults().is_empty() {
            self.plan = Some(FaultPlan::from_scenario(scenario, self.config.frame_seed));
        }
        let dt = scenario.config().dt_s;
        let mut records = Vec::with_capacity(scenario.ticks().len());
        let mut total_energy = Joules::ZERO;
        let mut violations = 0usize;
        let mut recovery_latencies = Vec::new();
        let mut recovery_start: Option<f64> = None;
        let dense = self.knowledge[0].inference.energy;
        for tick in scenario.ticks() {
            let rec = self.step(tick, dt)?;
            total_energy += rec.inference_energy + rec.transition_energy;
            if rec.violation {
                violations += 1;
                if recovery_start.is_none() {
                    recovery_start = Some(rec.t);
                }
            } else if let Some(start) = recovery_start.take() {
                recovery_latencies.push(rec.t - start);
            }
            records.push(rec);
        }
        Ok(RunResult {
            policy: self.config.policy.name(),
            mechanism: self.config.mechanism.to_string(),
            defense: self.config.defense.to_string(),
            dense_energy: dense * records.len() as f64,
            total_energy,
            violations,
            recovery_latencies,
            transitions: self.transitions,
            faults_injected: self.faults_injected,
            faults_detected: self.faults_detected,
            faults_repaired: self.faults_repaired,
            fault_recovery_latencies: self.fault_recoveries.clone(),
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::StormConfig;
    use crate::policy::AdaptiveConfig;
    use reprune_nn::models;
    use reprune_prune::{LadderConfig, PruneCriterion};
    use reprune_scenario::{ScenarioConfig, SegmentKind};

    fn ladder_net() -> (Network, SparsityLadder) {
        let net = models::default_perception_cnn(1).unwrap();
        let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
            .criterion(PruneCriterion::ChannelL2)
            .build(&net)
            .unwrap();
        (net, ladder)
    }

    fn env() -> SafetyEnvelope {
        SafetyEnvelope::new(vec![0.6, 0.4, 0.2]).unwrap()
    }

    fn manager(policy: Policy, mech: RestoreMechanism) -> RuntimeManager {
        let (net, ladder) = ladder_net();
        RuntimeManager::attach(
            net,
            ladder,
            RuntimeManagerConfig::new(policy, env()).mechanism(mech),
        )
        .unwrap()
    }

    fn calm_scenario(seed: u64) -> Scenario {
        ScenarioConfig::new()
            .duration_s(30.0)
            .seed(seed)
            .start_segment(SegmentKind::Highway)
            .event_rate_scale(0.0)
            .fixed_weather(Weather::Clear)
            .generate()
    }

    #[test]
    fn attach_validates_envelope_size() {
        let (net, ladder) = ladder_net();
        let bad_env = SafetyEnvelope::new(vec![0.5]).unwrap(); // 2 levels vs 4
        assert!(RuntimeManager::attach(
            net,
            ladder,
            RuntimeManagerConfig::new(Policy::NoPruning, bad_env)
        )
        .is_err());
    }

    #[test]
    fn knowledge_costs_decrease_with_level() {
        let m = manager(Policy::NoPruning, RestoreMechanism::DeltaLog);
        let k = m.knowledge();
        assert_eq!(k.len(), 4);
        for pair in k.windows(2) {
            assert!(pair[1].inference.energy.0 < pair[0].inference.energy.0);
            assert!(pair[1].log_entries > pair[0].log_entries);
        }
        assert_eq!(k[0].log_entries, 0);
    }

    #[test]
    fn no_pruning_never_violates_and_saves_nothing() {
        let mut m = manager(Policy::NoPruning, RestoreMechanism::DeltaLog);
        let r = m.run(&calm_scenario(1)).unwrap();
        assert_eq!(r.violations, 0);
        assert!(r.energy_saved_fraction().abs() < 1e-9);
        assert!(r.records.iter().all(|rec| rec.level == 0));
    }

    #[test]
    fn adaptive_prunes_on_calm_highway() {
        let mut m = manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            RestoreMechanism::DeltaLog,
        );
        let r = m.run(&calm_scenario(2)).unwrap();
        // Highway clear risk = 0.10 → deepest level permitted is 3.
        assert!(r.mean_sparsity() > 0.3, "mean sparsity {}", r.mean_sparsity());
        assert!(r.energy_saved_fraction() > 0.2, "saved {}", r.energy_saved_fraction());
        assert!(r.transitions >= 3);
    }

    #[test]
    fn static_aggressive_violates_in_urban_risk() {
        let mut m = manager(Policy::Static { level: 3 }, RestoreMechanism::DeltaLog);
        let busy = ScenarioConfig::new()
            .duration_s(60.0)
            .seed(3)
            .start_segment(SegmentKind::Intersection)
            .event_rate_scale(2.0)
            .generate();
        let r = m.run(&busy).unwrap();
        assert!(r.violations > 0, "static-aggressive must violate in traffic");
    }

    #[test]
    fn oracle_never_violates_with_delta_restore() {
        let mut m = manager(Policy::Oracle, RestoreMechanism::DeltaLog);
        let busy = ScenarioConfig::new()
            .duration_s(120.0)
            .seed(4)
            .event_rate_scale(2.0)
            .generate();
        let r = m.run(&busy).unwrap();
        assert_eq!(
            r.violations, 0,
            "oracle + instant restore is violation-free by construction"
        );
    }

    #[test]
    fn reload_mechanism_delays_recovery() {
        // Same oracle policy; reload restoration takes >1 tick at
        // deployment scale, so demand spikes produce violation ticks.
        let busy = ScenarioConfig::new()
            .duration_s(300.0)
            .seed(5)
            .event_rate_scale(3.0)
            .generate();
        let mut fast = manager(Policy::Oracle, RestoreMechanism::DeltaLog);
        let mut slow = manager(Policy::Oracle, RestoreMechanism::StorageReload);
        let rf = fast.run(&busy).unwrap();
        let rs = slow.run(&busy).unwrap();
        assert!(
            rs.violations > rf.violations,
            "reload {} must out-violate delta {}",
            rs.violations,
            rf.violations
        );
    }

    #[test]
    fn run_is_deterministic() {
        let s = calm_scenario(7);
        let run = |seed| {
            let (net, ladder) = ladder_net();
            let mut m = RuntimeManager::attach(
                net,
                ladder,
                RuntimeManagerConfig::new(
                    Policy::adaptive(AdaptiveConfig::default()),
                    env(),
                )
                .frame_seed(seed),
            )
            .unwrap();
            m.run(&s).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).records, run(10).records);
    }

    #[test]
    fn pending_restore_retargets_on_deeper_emergency() {
        // With the slow reload mechanism, a restore spans multiple ticks;
        // if a deeper emergency arrives mid-restore, the pending target
        // must drop further instead of being ignored.
        let mut m = manager(Policy::Oracle, RestoreMechanism::StorageReload);
        let mk = |t: f64, risk: f64| reprune_scenario::Tick {
            t,
            segment: SegmentKind::Highway,
            weather: Weather::Clear,
            risk,
            active_events: 0,
        };
        let dt = 0.1;
        // Calm: oracle walks to the deepest level immediately.
        for i in 0..3 {
            m.step(&mk(i as f64 * dt, 0.05), dt).unwrap();
        }
        assert_eq!(m.current_level(), 3);
        // Moderate risk demands level 1 → slow restore begins (200 ms).
        m.step(&mk(0.3, 0.45), dt).unwrap();
        assert_eq!(m.current_level(), 3, "restore still in flight");
        // Mid-restore the risk spikes to critical: pending target must
        // retarget to level 0.
        m.step(&mk(0.4, 0.9), dt).unwrap();
        // Let the (retargeted) restore complete.
        for i in 5..12 {
            m.step(&mk(i as f64 * dt, 0.9), dt).unwrap();
        }
        assert_eq!(
            m.current_level(),
            0,
            "the completed restore must honor the deeper emergency target"
        );
    }

    #[test]
    fn odd_exit_forces_full_capacity() {
        // Night weather is outside the conservative ODD: even on a calm
        // highway the runtime must refuse to prune.
        let (net, ladder) = ladder_net();
        let mut m = RuntimeManager::attach(
            net,
            ladder,
            RuntimeManagerConfig::new(
                Policy::adaptive(AdaptiveConfig {
                    hysteresis: 0.0,
                    dwell_ticks: 1,
                }),
                env(),
            )
            .odd(reprune_scenario::OddSpec::conservative()),
        )
        .unwrap();
        let night = ScenarioConfig::new()
            .duration_s(30.0)
            .seed(13)
            .start_segment(SegmentKind::Highway)
            .event_rate_scale(0.0)
            .fixed_weather(Weather::Night)
            .generate();
        let r = m.run(&night).unwrap();
        assert_eq!(r.odd_exit_ticks(), r.records.len(), "whole drive is out of ODD");
        assert!(r.records.iter().all(|rec| rec.level == 0));
        assert_eq!(r.violations, 0, "full capacity outside the ODD is compliant");
        // Same drive in clear weather is inside the ODD and prunes freely.
        let clear = ScenarioConfig::new()
            .duration_s(30.0)
            .seed(13)
            .start_segment(SegmentKind::Highway)
            .event_rate_scale(0.0)
            .fixed_weather(Weather::Clear)
            .generate();
        let (net2, ladder2) = ladder_net();
        let mut m2 = RuntimeManager::attach(
            net2,
            ladder2,
            RuntimeManagerConfig::new(
                Policy::adaptive(AdaptiveConfig {
                    hysteresis: 0.0,
                    dwell_ticks: 1,
                }),
                env(),
            )
            .odd(reprune_scenario::OddSpec::conservative()),
        )
        .unwrap();
        let rc = m2.run(&clear).unwrap();
        assert_eq!(rc.odd_exit_ticks(), 0);
        assert!(rc.mean_sparsity() > 0.0, "inside the ODD pruning proceeds");
    }

    #[test]
    fn sensor_blackout_restores_capacity() {
        let mut m = manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            RestoreMechanism::DeltaLog,
        );
        let calm = calm_scenario(11);
        let dt = calm.config().dt_s;
        // Let it prune on the calm highway.
        for tick in calm.ticks().iter().take(150) {
            m.step(tick, dt).unwrap();
        }
        assert!(m.current_level() > 0, "should have pruned when calm");
        // Sensor blackout: the fail-safe estimate must drive a restore
        // within a few ticks even though the true risk stays low.
        m.set_sensor_failed(true);
        for tick in calm.ticks().iter().skip(150).take(30) {
            m.step(tick, dt).unwrap();
        }
        assert_eq!(m.current_level(), 0, "blackout must restore full capacity");
        // Recovery: pruning resumes after the sensor returns.
        m.set_sensor_failed(false);
        for tick in calm.ticks().iter().skip(180).take(120) {
            m.step(tick, dt).unwrap();
        }
        assert!(m.current_level() > 0, "pruning should resume after recovery");
    }

    fn busy_scenario(seed: u64) -> Scenario {
        ScenarioConfig::new()
            .duration_s(120.0)
            .seed(seed)
            .event_rate_scale(2.0)
            .generate()
    }

    fn log_flip_campaign() -> Vec<FaultEvent> {
        [10.0, 30.0, 50.0, 70.0, 90.0]
            .iter()
            .map(|&t| FaultEvent {
                start_s: t,
                kind: FaultKind::LogBitFlip { flips: 3 },
            })
            .collect()
    }

    fn fault_manager(policy: Policy, defense: FaultDefense) -> RuntimeManager {
        let (net, ladder) = ladder_net();
        RuntimeManager::attach(
            net,
            ladder,
            RuntimeManagerConfig::new(policy, env()).defense(defense),
        )
        .unwrap()
    }

    #[test]
    fn full_chain_repairs_log_bitflips_with_zero_silent_corruption() {
        // The acceptance campaign: bit-flips land in the reversal log
        // while the oracle policy is actively pruning/restoring through
        // risk spikes. The full chain must detect, repair, and finish
        // the drive without ever serving corrupted weights.
        let s = busy_scenario(21).with_faults(log_flip_campaign());
        let mut m = fault_manager(Policy::Oracle, FaultDefense::FullChain);
        let r = m.run(&s).unwrap();
        assert!(r.faults_injected > 0, "campaign must land flips");
        assert!(r.faults_detected >= 1, "scrub/verify must notice");
        assert!(r.faults_repaired >= 1, "shadow repair must fire");
        assert_eq!(r.corrupt_inference_ticks(), 0, "no corrupt inference");
        assert_eq!(r.silent_corruption_ticks(), 0);
        assert_eq!(r.violations, 0, "oracle + full chain stays compliant");
    }

    #[test]
    fn no_defense_serves_corruption_silently() {
        let s = busy_scenario(21).with_faults(log_flip_campaign());
        let mut m = fault_manager(Policy::Oracle, FaultDefense::None);
        let r = m.run(&s).unwrap();
        assert!(r.faults_injected > 0);
        assert_eq!(r.faults_detected, 0, "no checks, no detections");
        assert!(
            r.corrupt_inference_ticks() > 0,
            "corrupted deltas must reach the live weights"
        );
        assert_eq!(
            r.silent_corruption_ticks(),
            r.corrupt_inference_ticks(),
            "without a defense, every corrupt tick is silent"
        );
        assert!(r.records.iter().all(|rec| rec.op_state == OperatingState::Normal));
    }

    #[test]
    fn checksum_only_detects_but_parks_in_minimal_risk() {
        let s = busy_scenario(21).with_faults(log_flip_campaign());
        let mut m = fault_manager(Policy::Oracle, FaultDefense::ChecksumOnly);
        let r = m.run(&s).unwrap();
        assert!(r.faults_detected >= 1, "verify-on-pop must notice");
        assert_eq!(r.faults_repaired, 0, "nothing to repair with");
        assert_eq!(
            r.corrupt_inference_ticks(),
            0,
            "detection alone still refuses corrupted restores"
        );
        assert!(
            r.minimal_risk_ticks() > 0,
            "unrepairable log must park the system in minimal risk"
        );
        assert!(
            r.violations > 0,
            "stuck pruned in minimal risk is flagged, not hidden"
        );
    }

    #[test]
    fn weight_bitflips_trigger_snapshot_fallback() {
        let faults = vec![FaultEvent {
            start_s: 12.0,
            kind: FaultKind::WeightBitFlip { flips: 8 },
        }];
        let s = calm_scenario(3).with_faults(faults);
        let mut m = fault_manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            FaultDefense::FullChain,
        );
        let r = m.run(&s).unwrap();
        assert!(r.faults_injected >= 1);
        assert!(r.faults_detected >= 1, "sealed checksum must notice");
        assert!(r.faults_repaired >= 1, "snapshot restore must resolve it");
        assert_eq!(r.silent_corruption_ticks(), 0);
        assert_eq!(
            m.op_state(),
            OperatingState::Normal,
            "system must recover to Normal"
        );
        assert!(r.mean_time_to_recover().is_some());
    }

    #[test]
    fn snapshot_corruption_escalates_to_storage_reload_with_backoff() {
        // Storage goes dark, then a burst of RAM flips hits both the
        // live weights and the snapshot region: the snapshot hop fails
        // its integrity check and the chain must fall through to a
        // storage reload, retrying with backoff until the outage ends.
        let faults = vec![
            FaultEvent {
                start_s: 5.0,
                kind: FaultKind::StorageTransient { duration_s: 10.0 },
            },
            FaultEvent {
                start_s: 6.0,
                kind: FaultKind::WeightBitFlip { flips: 12 },
            },
        ];
        let s = ScenarioConfig::new()
            .duration_s(40.0)
            .seed(5)
            .start_segment(SegmentKind::Highway)
            .event_rate_scale(0.0)
            .fixed_weather(Weather::Clear)
            .generate()
            .with_faults(faults);
        let mut m = fault_manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            FaultDefense::FullChain,
        );
        let r = m.run(&s).unwrap();
        assert!(r.faults_detected >= 2, "live + snapshot corruption noticed");
        assert!(
            r.minimal_risk_ticks() > 0,
            "waiting on storage must be minimal-risk, not business as usual"
        );
        assert!(
            r.corrupt_inference_ticks() > 0,
            "the wait is served on corrupt weights — but loudly"
        );
        assert_eq!(r.silent_corruption_ticks(), 0);
        assert_eq!(
            m.op_state(),
            OperatingState::Normal,
            "reload after the outage must fully recover the system"
        );
    }

    #[test]
    fn fault_campaign_is_deterministic() {
        let storm = crate::faults::storm_events(&StormConfig::severe(10.0, 100.0), 77);
        let s = busy_scenario(9).with_faults(storm);
        let run = || {
            let mut m = fault_manager(
                Policy::adaptive(AdaptiveConfig::default()),
                FaultDefense::FullChain,
            );
            m.run(&s).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records, "same seed, same campaign, same run");
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.faults_detected, b.faults_detected);
        assert_eq!(a.silent_corruption_ticks(), 0, "full chain never silent");
    }

    #[test]
    fn scheduled_sensor_blackout_restores_capacity_and_degrades() {
        let faults = vec![FaultEvent {
            start_s: 15.0,
            kind: FaultKind::SensorBlackout { duration_s: 6.0 },
        }];
        let s = calm_scenario(11).with_faults(faults);
        let mut m = fault_manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            FaultDefense::FullChain,
        );
        let r = m.run(&s).unwrap();
        let during: Vec<_> = r
            .records
            .iter()
            .filter(|rec| rec.t >= 15.0 && rec.t < 21.0)
            .collect();
        assert!(
            during.iter().any(|rec| rec.level == 0),
            "fail-safe estimate must force a restore during the blackout"
        );
        assert!(
            during.iter().all(|rec| rec.op_state == OperatingState::Degraded),
            "blackout window is a Degraded episode"
        );
        assert_eq!(m.op_state(), OperatingState::Normal, "recovers after window");
        assert!(
            r.records.last().unwrap().level > 0,
            "pruning resumes once the sensor returns"
        );
    }

    #[test]
    fn exec_overrun_flags_deadline_misses() {
        let faults = vec![FaultEvent {
            start_s: 10.0,
            kind: FaultKind::ExecOverrun {
                extra_ms: 150.0,
                duration_s: 3.0,
            },
        }];
        let s = calm_scenario(4).with_faults(faults);
        let mut m = fault_manager(Policy::NoPruning, FaultDefense::FullChain);
        let r = m.run(&s).unwrap();
        let window = r
            .records
            .iter()
            .filter(|rec| rec.t >= 10.0 && rec.t < 13.0)
            .count();
        assert!(window > 0);
        assert!(
            r.deadline_miss_ticks() >= window,
            "a 150 ms overrun on a 100 ms period must miss every tick: {} < {window}",
            r.deadline_miss_ticks()
        );
        let clean = fault_manager(Policy::NoPruning, FaultDefense::FullChain)
            .run(&calm_scenario(4))
            .unwrap();
        assert_eq!(clean.deadline_miss_ticks(), 0, "no faults, no misses");
    }

    #[test]
    fn confidence_dropout_raises_estimated_risk() {
        let faults = vec![FaultEvent {
            start_s: 15.0,
            kind: FaultKind::ConfidenceDropout { duration_s: 5.0 },
        }];
        let s = calm_scenario(8).with_faults(faults);
        let mut m = fault_manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            FaultDefense::FullChain,
        );
        let r = m.run(&s).unwrap();
        let before: f64 = r
            .records
            .iter()
            .filter(|rec| rec.t >= 10.0 && rec.t < 15.0)
            .map(|rec| rec.estimated_risk)
            .sum::<f64>()
            / 50.0;
        let during: f64 = r
            .records
            .iter()
            .filter(|rec| rec.t >= 16.0 && rec.t < 20.0)
            .map(|rec| rec.estimated_risk)
            .sum::<f64>()
            / 40.0;
        assert!(
            during > before + 0.02,
            "worst-case confidence deficit must lift the estimate: {before} -> {during}"
        );
    }

    #[test]
    fn weather_mapping_total() {
        assert_eq!(weather_to_context(Weather::Clear), SceneContext::Clear);
        assert_eq!(weather_to_context(Weather::Rain), SceneContext::Rain);
        assert_eq!(weather_to_context(Weather::Night), SceneContext::Night);
        assert_eq!(weather_to_context(Weather::Fog), SceneContext::Fog);
    }

    #[test]
    fn mechanism_display() {
        assert_eq!(RestoreMechanism::DeltaLog.to_string(), "delta-log");
        assert_eq!(RestoreMechanism::Snapshot.to_string(), "snapshot");
        assert_eq!(RestoreMechanism::StorageReload.to_string(), "storage-reload");
    }
}
