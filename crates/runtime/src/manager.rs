//! The Execute stage and the full MAPE-K loop.

use crate::envelope::SafetyEnvelope;
use crate::monitor::{RiskEstimator, RiskEstimatorConfig};
use crate::policy::Policy;
use crate::record::{RunResult, TickRecord};
use crate::{Result, RuntimeError};
use reprune_nn::dataset::{render_scene, SceneContext, SCENE_CLASSES};
use reprune_nn::Network;
use reprune_platform::profile::NetworkProfile;
use reprune_platform::{Bytes, InferenceCost, Joules, Seconds, SocModel};
use reprune_prune::{ReversiblePruner, SparsityLadder};
use reprune_scenario::{OddSpec, Scenario, Tick, Weather};
use reprune_tensor::rng::Prng;
use serde::{Deserialize, Serialize};

/// How the runtime restores capacity when it lowers the ladder level.
///
/// All three mechanisms end in the same weights (the simulator uses the
/// reversal log for state in every case); they differ in the *platform
/// cost* charged and therefore in how long the network stays degraded —
/// which is exactly what experiment F4 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RestoreMechanism {
    /// The paper's reversal log: O(#evicted) scattered writes.
    DeltaLog,
    /// Full in-RAM snapshot copy.
    Snapshot,
    /// Reload the model image from storage (the conventional baseline for
    /// irreversible pruning).
    StorageReload,
}

impl std::fmt::Display for RestoreMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RestoreMechanism::DeltaLog => "delta-log",
            RestoreMechanism::Snapshot => "snapshot",
            RestoreMechanism::StorageReload => "storage-reload",
        };
        write!(f, "{s}")
    }
}

/// Scale factor mapping the tiny trainable reference model to a
/// deployment-scale perception network (DESIGN.md §5): MACs, weight
/// bytes, and log entries are all multiplied by `factor` when charging
/// platform costs. Accuracy is always measured on the real (small) model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentScale {
    /// Multiplier on MACs / bytes / log entries.
    pub factor: f64,
}

impl Default for DeploymentScale {
    fn default() -> Self {
        // ~54k-param reference CNN × 150 ≈ an 8M-param (33 MB) perception
        // network — ResNet-18 class, the size automotive stacks deploy.
        DeploymentScale { factor: 150.0 }
    }
}

/// Pre-profiled cost of running at one ladder level (the MAPE-K Knowledge
/// base).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelKnowledge {
    /// Ladder level.
    pub level: usize,
    /// Nominal sparsity.
    pub sparsity: f64,
    /// Deployment-scale inference cost at this level.
    pub inference: InferenceCost,
    /// Reversal-log entries held when parked at this level (scaled).
    pub log_entries: usize,
}

/// Configuration of the runtime manager.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeManagerConfig {
    /// Adaptation policy.
    pub policy: Policy,
    /// Safety envelope over the ladder.
    pub envelope: SafetyEnvelope,
    /// Risk-estimator (Monitor) configuration.
    pub estimator: RiskEstimatorConfig,
    /// Restore mechanism to charge.
    pub mechanism: RestoreMechanism,
    /// Deployment scaling of platform costs.
    pub scale: DeploymentScale,
    /// Platform model.
    pub soc: SocModel,
    /// Seed for per-tick frame rendering.
    pub frame_seed: u64,
    /// Operational Design Domain: outside it the runtime forces full
    /// capacity regardless of the policy (minimal-risk response).
    pub odd: OddSpec,
}

impl RuntimeManagerConfig {
    /// A reasonable default configuration for a given envelope.
    pub fn new(policy: Policy, envelope: SafetyEnvelope) -> Self {
        RuntimeManagerConfig {
            policy,
            envelope,
            estimator: RiskEstimatorConfig::default(),
            mechanism: RestoreMechanism::DeltaLog,
            scale: DeploymentScale::default(),
            soc: SocModel::jetson_class(),
            frame_seed: 0,
            odd: OddSpec::permissive(),
        }
    }

    /// Sets the restore mechanism.
    pub fn mechanism(mut self, mechanism: RestoreMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Sets the frame-rendering seed.
    pub fn frame_seed(mut self, seed: u64) -> Self {
        self.frame_seed = seed;
        self
    }

    /// Sets the estimator configuration.
    pub fn estimator(mut self, estimator: RiskEstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the platform model.
    pub fn soc(mut self, soc: SocModel) -> Self {
        self.soc = soc;
        self
    }

    /// Sets the deployment scale factor.
    pub fn scale(mut self, factor: f64) -> Self {
        self.scale = DeploymentScale { factor };
        self
    }

    /// Sets the Operational Design Domain.
    pub fn odd(mut self, odd: OddSpec) -> Self {
        self.odd = odd;
        self
    }
}

/// Maps scenario weather to the dataset rendering context.
pub fn weather_to_context(weather: Weather) -> SceneContext {
    match weather {
        Weather::Clear => SceneContext::Clear,
        Weather::Rain => SceneContext::Rain,
        Weather::Night => SceneContext::Night,
        Weather::Fog => SceneContext::Fog,
    }
}

struct PendingRestore {
    target: usize,
    ready_at: f64,
}

/// The MAPE-K runtime manager: owns the network, the reversible pruner,
/// and the control loop that drives them through a scenario.
pub struct RuntimeManager {
    net: Network,
    pruner: ReversiblePruner,
    config: RuntimeManagerConfig,
    knowledge: Vec<LevelKnowledge>,
    estimator: RiskEstimator,
    frame_rng: Prng,
    pending: Option<PendingRestore>,
    last_confidence: f64,
    model_bytes: Bytes,
    transitions: usize,
}

impl RuntimeManager {
    /// Attaches the runtime to a trained network with a pre-built ladder.
    ///
    /// Profiles every ladder level once (the Knowledge base).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if the envelope's level count
    /// disagrees with the ladder, or propagates profiling errors.
    pub fn attach(
        net: Network,
        ladder: SparsityLadder,
        config: RuntimeManagerConfig,
    ) -> Result<Self> {
        if config.envelope.levels() != ladder.num_levels() {
            return Err(RuntimeError::bad_config(format!(
                "envelope governs {} levels but ladder has {}",
                config.envelope.levels(),
                ladder.num_levels()
            )));
        }
        let input_dims = [1, reprune_nn::dataset::SCENE_SIZE, reprune_nn::dataset::SCENE_SIZE];
        let mut knowledge = Vec::with_capacity(ladder.num_levels());
        for k in 0..ladder.num_levels() {
            let level = ladder.level(k)?;
            let profile = NetworkProfile::of_masked(&net, &input_dims, Some(&level.masks))?
                .scaled(config.scale.factor);
            knowledge.push(LevelKnowledge {
                level: k,
                sparsity: level.sparsity,
                inference: config.soc.inference_cost(&profile),
                log_entries: (level.masks.pruned_count() as f64 * config.scale.factor) as usize,
            });
        }
        let model_bytes = Bytes(
            (net.prunable_layers()
                .iter()
                .map(|m| m.weight_len() * 4)
                .sum::<usize>() as f64
                * config.scale.factor) as u64,
        );
        let pruner = ReversiblePruner::attach(&net, ladder)?;
        Ok(RuntimeManager {
            estimator: RiskEstimator::new(config.estimator),
            frame_rng: Prng::new(config.frame_seed),
            net,
            pruner,
            knowledge,
            pending: None,
            last_confidence: 1.0,
            model_bytes,
            transitions: 0,
            config,
        })
    }

    /// The per-level Knowledge base.
    pub fn knowledge(&self) -> &[LevelKnowledge] {
        &self.knowledge
    }

    /// Current effective ladder level.
    pub fn current_level(&self) -> usize {
        self.pruner.current_level()
    }

    /// Shared access to the managed network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Number of ladder transitions executed so far.
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    /// Injects or clears a risk-sensor failure (failure injection for
    /// resilience testing). While failed, the Monitor drives the estimate
    /// toward the configured fail-safe risk, which makes the adaptive
    /// policy restore capacity.
    pub fn set_sensor_failed(&mut self, failed: bool) {
        self.estimator.set_sensor_failed(failed);
    }

    fn restore_latency(&self, entries_restored: usize) -> Seconds {
        match self.config.mechanism {
            RestoreMechanism::DeltaLog => self
                .config
                .soc
                .delta_restore_latency((entries_restored as f64 * self.config.scale.factor) as usize),
            RestoreMechanism::Snapshot => {
                self.config.soc.snapshot_restore_latency(self.model_bytes)
            }
            RestoreMechanism::StorageReload => {
                self.config.soc.storage_reload_latency(self.model_bytes)
            }
        }
    }

    fn restore_energy(&self, entries_restored: usize) -> Joules {
        match self.config.mechanism {
            RestoreMechanism::DeltaLog => self
                .config
                .soc
                .delta_restore_energy((entries_restored as f64 * self.config.scale.factor) as usize),
            RestoreMechanism::Snapshot => {
                let lat = self.config.soc.snapshot_restore_latency(self.model_bytes);
                Joules(
                    2.0 * self.model_bytes.as_f64() * self.config.soc.energy_per_dram_byte
                        + lat.0 * self.config.soc.idle_power_watts,
                )
            }
            RestoreMechanism::StorageReload => {
                self.config.soc.storage_reload_energy(self.model_bytes)
            }
        }
    }

    /// Runs one MAPE-K iteration for a scenario tick, returning the
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates pruning/inference errors.
    pub fn step(&mut self, tick: &Tick, dt: f64) -> Result<TickRecord> {
        // Complete a pending (multi-tick) restore first.
        let mut transition_latency = Seconds::ZERO;
        let mut transition_energy = Joules::ZERO;
        if let Some(p) = &self.pending {
            if tick.t + 1e-9 >= p.ready_at {
                let target = p.target;
                let t = self.pruner.set_level(&mut self.net, target)?;
                if t.from != t.to {
                    self.transitions += 1;
                }
                self.pending = None;
            }
        }

        // Monitor: fuse risk sensor + last confidence.
        let estimated = self.estimator.observe(tick.risk, self.last_confidence);

        // Analyze + Plan.
        let current = self.effective_level();
        let inside_odd = self.config.odd.contains(tick);
        let target = if inside_odd {
            self.config.policy.decide(&self.config.envelope, estimated, tick.risk, current)
        } else {
            // Outside the ODD the safety case does not cover degraded
            // perception: minimal-risk response is full capacity.
            0
        };

        // Execute.
        if self.pending.is_none() && target != self.pruner.current_level() {
            if target > self.pruner.current_level() {
                // Pruning deeper: in-place mask application, sub-tick cost.
                let before = self.pruner.log_entries();
                let t = self.pruner.set_level(&mut self.net, target)?;
                if t.from != t.to {
                    self.transitions += 1;
                }
                let pushed = self.pruner.log_entries() - before;
                transition_latency = self
                    .config
                    .soc
                    .delta_restore_latency((pushed as f64 * self.config.scale.factor) as usize);
                transition_energy = self.restore_energy(pushed);
            } else {
                // Restoring capacity: charge the configured mechanism.
                let entries = self.entries_between(target, self.pruner.current_level());
                let latency = self.restore_latency(entries);
                transition_latency = latency;
                transition_energy = self.restore_energy(entries);
                if latency.0 <= dt {
                    let t = self.pruner.set_level(&mut self.net, target)?;
                    if t.from != t.to {
                        self.transitions += 1;
                    }
                } else {
                    self.pending = Some(PendingRestore {
                        target,
                        ready_at: tick.t + latency.0,
                    });
                }
            }
        } else if let Some(p) = &mut self.pending {
            // A deeper emergency while already restoring: retarget lower.
            if target < p.target {
                p.target = target;
            }
        }

        // Perception: render a frame for the current context and classify.
        let context = weather_to_context(tick.weather);
        let label = self.frame_rng.next_below(SCENE_CLASSES);
        let sample = render_scene(label, context, &mut self.frame_rng);
        let (pred, confidence) = self.net.predict(&sample.input)?;
        self.last_confidence = confidence as f64;

        let effective = self.effective_level();
        let k = &self.knowledge[effective];
        let max_allowed = self.config.envelope.max_level(tick.risk);
        Ok(TickRecord {
            t: tick.t,
            true_risk: tick.risk,
            estimated_risk: estimated,
            level: effective,
            sparsity: k.sparsity,
            max_allowed_level: max_allowed,
            odd_exit: !inside_odd,
            violation: effective > max_allowed || (!inside_odd && effective > 0),
            correct: pred == label,
            confidence: confidence as f64,
            inference_energy: k.inference.energy,
            inference_latency: k.inference.latency,
            transition_energy,
            transition_latency,
            segment: tick.segment,
            weather: tick.weather,
        })
    }

    /// Level currently *effective* for safety purposes: while a restore is
    /// pending the network still runs degraded.
    fn effective_level(&self) -> usize {
        self.pruner.current_level()
    }

    fn entries_between(&self, low: usize, high: usize) -> usize {
        let a = self
            .pruner
            .ladder()
            .level(low)
            .map(|l| l.masks.pruned_count())
            .unwrap_or(0);
        let b = self
            .pruner
            .ladder()
            .level(high)
            .map(|l| l.masks.pruned_count())
            .unwrap_or(0);
        b.saturating_sub(a)
    }

    /// Drives a whole scenario, returning per-tick records and aggregates.
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run(&mut self, scenario: &Scenario) -> Result<RunResult> {
        let dt = scenario.config().dt_s;
        let mut records = Vec::with_capacity(scenario.ticks().len());
        let mut total_energy = Joules::ZERO;
        let mut violations = 0usize;
        let mut recovery_latencies = Vec::new();
        let mut recovery_start: Option<f64> = None;
        let dense = self.knowledge[0].inference.energy;
        for tick in scenario.ticks() {
            let rec = self.step(tick, dt)?;
            total_energy += rec.inference_energy + rec.transition_energy;
            if rec.violation {
                violations += 1;
                if recovery_start.is_none() {
                    recovery_start = Some(rec.t);
                }
            } else if let Some(start) = recovery_start.take() {
                recovery_latencies.push(rec.t - start);
            }
            records.push(rec);
        }
        Ok(RunResult {
            policy: self.config.policy.name(),
            mechanism: self.config.mechanism.to_string(),
            dense_energy: dense * records.len() as f64,
            total_energy,
            violations,
            recovery_latencies,
            transitions: self.transitions,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AdaptiveConfig;
    use reprune_nn::models;
    use reprune_prune::{LadderConfig, PruneCriterion};
    use reprune_scenario::{ScenarioConfig, SegmentKind};

    fn ladder_net() -> (Network, SparsityLadder) {
        let net = models::default_perception_cnn(1).unwrap();
        let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
            .criterion(PruneCriterion::ChannelL2)
            .build(&net)
            .unwrap();
        (net, ladder)
    }

    fn env() -> SafetyEnvelope {
        SafetyEnvelope::new(vec![0.6, 0.4, 0.2]).unwrap()
    }

    fn manager(policy: Policy, mech: RestoreMechanism) -> RuntimeManager {
        let (net, ladder) = ladder_net();
        RuntimeManager::attach(
            net,
            ladder,
            RuntimeManagerConfig::new(policy, env()).mechanism(mech),
        )
        .unwrap()
    }

    fn calm_scenario(seed: u64) -> Scenario {
        ScenarioConfig::new()
            .duration_s(30.0)
            .seed(seed)
            .start_segment(SegmentKind::Highway)
            .event_rate_scale(0.0)
            .fixed_weather(Weather::Clear)
            .generate()
    }

    #[test]
    fn attach_validates_envelope_size() {
        let (net, ladder) = ladder_net();
        let bad_env = SafetyEnvelope::new(vec![0.5]).unwrap(); // 2 levels vs 4
        assert!(RuntimeManager::attach(
            net,
            ladder,
            RuntimeManagerConfig::new(Policy::NoPruning, bad_env)
        )
        .is_err());
    }

    #[test]
    fn knowledge_costs_decrease_with_level() {
        let m = manager(Policy::NoPruning, RestoreMechanism::DeltaLog);
        let k = m.knowledge();
        assert_eq!(k.len(), 4);
        for pair in k.windows(2) {
            assert!(pair[1].inference.energy.0 < pair[0].inference.energy.0);
            assert!(pair[1].log_entries > pair[0].log_entries);
        }
        assert_eq!(k[0].log_entries, 0);
    }

    #[test]
    fn no_pruning_never_violates_and_saves_nothing() {
        let mut m = manager(Policy::NoPruning, RestoreMechanism::DeltaLog);
        let r = m.run(&calm_scenario(1)).unwrap();
        assert_eq!(r.violations, 0);
        assert!(r.energy_saved_fraction().abs() < 1e-9);
        assert!(r.records.iter().all(|rec| rec.level == 0));
    }

    #[test]
    fn adaptive_prunes_on_calm_highway() {
        let mut m = manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            RestoreMechanism::DeltaLog,
        );
        let r = m.run(&calm_scenario(2)).unwrap();
        // Highway clear risk = 0.10 → deepest level permitted is 3.
        assert!(r.mean_sparsity() > 0.3, "mean sparsity {}", r.mean_sparsity());
        assert!(r.energy_saved_fraction() > 0.2, "saved {}", r.energy_saved_fraction());
        assert!(r.transitions >= 3);
    }

    #[test]
    fn static_aggressive_violates_in_urban_risk() {
        let mut m = manager(Policy::Static { level: 3 }, RestoreMechanism::DeltaLog);
        let busy = ScenarioConfig::new()
            .duration_s(60.0)
            .seed(3)
            .start_segment(SegmentKind::Intersection)
            .event_rate_scale(2.0)
            .generate();
        let r = m.run(&busy).unwrap();
        assert!(r.violations > 0, "static-aggressive must violate in traffic");
    }

    #[test]
    fn oracle_never_violates_with_delta_restore() {
        let mut m = manager(Policy::Oracle, RestoreMechanism::DeltaLog);
        let busy = ScenarioConfig::new()
            .duration_s(120.0)
            .seed(4)
            .event_rate_scale(2.0)
            .generate();
        let r = m.run(&busy).unwrap();
        assert_eq!(
            r.violations, 0,
            "oracle + instant restore is violation-free by construction"
        );
    }

    #[test]
    fn reload_mechanism_delays_recovery() {
        // Same oracle policy; reload restoration takes >1 tick at
        // deployment scale, so demand spikes produce violation ticks.
        let busy = ScenarioConfig::new()
            .duration_s(300.0)
            .seed(5)
            .event_rate_scale(3.0)
            .generate();
        let mut fast = manager(Policy::Oracle, RestoreMechanism::DeltaLog);
        let mut slow = manager(Policy::Oracle, RestoreMechanism::StorageReload);
        let rf = fast.run(&busy).unwrap();
        let rs = slow.run(&busy).unwrap();
        assert!(
            rs.violations > rf.violations,
            "reload {} must out-violate delta {}",
            rs.violations,
            rf.violations
        );
    }

    #[test]
    fn run_is_deterministic() {
        let s = calm_scenario(7);
        let run = |seed| {
            let (net, ladder) = ladder_net();
            let mut m = RuntimeManager::attach(
                net,
                ladder,
                RuntimeManagerConfig::new(
                    Policy::adaptive(AdaptiveConfig::default()),
                    env(),
                )
                .frame_seed(seed),
            )
            .unwrap();
            m.run(&s).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).records, run(10).records);
    }

    #[test]
    fn pending_restore_retargets_on_deeper_emergency() {
        // With the slow reload mechanism, a restore spans multiple ticks;
        // if a deeper emergency arrives mid-restore, the pending target
        // must drop further instead of being ignored.
        let mut m = manager(Policy::Oracle, RestoreMechanism::StorageReload);
        let mk = |t: f64, risk: f64| reprune_scenario::Tick {
            t,
            segment: SegmentKind::Highway,
            weather: Weather::Clear,
            risk,
            active_events: 0,
        };
        let dt = 0.1;
        // Calm: oracle walks to the deepest level immediately.
        for i in 0..3 {
            m.step(&mk(i as f64 * dt, 0.05), dt).unwrap();
        }
        assert_eq!(m.current_level(), 3);
        // Moderate risk demands level 1 → slow restore begins (200 ms).
        m.step(&mk(0.3, 0.45), dt).unwrap();
        assert_eq!(m.current_level(), 3, "restore still in flight");
        // Mid-restore the risk spikes to critical: pending target must
        // retarget to level 0.
        m.step(&mk(0.4, 0.9), dt).unwrap();
        // Let the (retargeted) restore complete.
        for i in 5..12 {
            m.step(&mk(i as f64 * dt, 0.9), dt).unwrap();
        }
        assert_eq!(
            m.current_level(),
            0,
            "the completed restore must honor the deeper emergency target"
        );
    }

    #[test]
    fn odd_exit_forces_full_capacity() {
        // Night weather is outside the conservative ODD: even on a calm
        // highway the runtime must refuse to prune.
        let (net, ladder) = ladder_net();
        let mut m = RuntimeManager::attach(
            net,
            ladder,
            RuntimeManagerConfig::new(
                Policy::adaptive(AdaptiveConfig {
                    hysteresis: 0.0,
                    dwell_ticks: 1,
                }),
                env(),
            )
            .odd(reprune_scenario::OddSpec::conservative()),
        )
        .unwrap();
        let night = ScenarioConfig::new()
            .duration_s(30.0)
            .seed(13)
            .start_segment(SegmentKind::Highway)
            .event_rate_scale(0.0)
            .fixed_weather(Weather::Night)
            .generate();
        let r = m.run(&night).unwrap();
        assert_eq!(r.odd_exit_ticks(), r.records.len(), "whole drive is out of ODD");
        assert!(r.records.iter().all(|rec| rec.level == 0));
        assert_eq!(r.violations, 0, "full capacity outside the ODD is compliant");
        // Same drive in clear weather is inside the ODD and prunes freely.
        let clear = ScenarioConfig::new()
            .duration_s(30.0)
            .seed(13)
            .start_segment(SegmentKind::Highway)
            .event_rate_scale(0.0)
            .fixed_weather(Weather::Clear)
            .generate();
        let (net2, ladder2) = ladder_net();
        let mut m2 = RuntimeManager::attach(
            net2,
            ladder2,
            RuntimeManagerConfig::new(
                Policy::adaptive(AdaptiveConfig {
                    hysteresis: 0.0,
                    dwell_ticks: 1,
                }),
                env(),
            )
            .odd(reprune_scenario::OddSpec::conservative()),
        )
        .unwrap();
        let rc = m2.run(&clear).unwrap();
        assert_eq!(rc.odd_exit_ticks(), 0);
        assert!(rc.mean_sparsity() > 0.0, "inside the ODD pruning proceeds");
    }

    #[test]
    fn sensor_blackout_restores_capacity() {
        let mut m = manager(
            Policy::adaptive(AdaptiveConfig {
                hysteresis: 0.05,
                dwell_ticks: 5,
            }),
            RestoreMechanism::DeltaLog,
        );
        let calm = calm_scenario(11);
        let dt = calm.config().dt_s;
        // Let it prune on the calm highway.
        for tick in calm.ticks().iter().take(150) {
            m.step(tick, dt).unwrap();
        }
        assert!(m.current_level() > 0, "should have pruned when calm");
        // Sensor blackout: the fail-safe estimate must drive a restore
        // within a few ticks even though the true risk stays low.
        m.set_sensor_failed(true);
        for tick in calm.ticks().iter().skip(150).take(30) {
            m.step(tick, dt).unwrap();
        }
        assert_eq!(m.current_level(), 0, "blackout must restore full capacity");
        // Recovery: pruning resumes after the sensor returns.
        m.set_sensor_failed(false);
        for tick in calm.ticks().iter().skip(180).take(120) {
            m.step(tick, dt).unwrap();
        }
        assert!(m.current_level() > 0, "pruning should resume after recovery");
    }

    #[test]
    fn weather_mapping_total() {
        assert_eq!(weather_to_context(Weather::Clear), SceneContext::Clear);
        assert_eq!(weather_to_context(Weather::Rain), SceneContext::Rain);
        assert_eq!(weather_to_context(Weather::Night), SceneContext::Night);
        assert_eq!(weather_to_context(Weather::Fog), SceneContext::Fog);
    }

    #[test]
    fn mechanism_display() {
        assert_eq!(RestoreMechanism::DeltaLog.to_string(), "delta-log");
        assert_eq!(RestoreMechanism::Snapshot.to_string(), "snapshot");
        assert_eq!(RestoreMechanism::StorageReload.to_string(), "storage-reload");
    }
}
