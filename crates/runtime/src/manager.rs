//! The MAPE-K runtime manager: pure orchestration over the stages.
//!
//! [`RuntimeManager::step`] wires the pipeline in a fixed order —
//! environment fault injection, Monitor health, Execute reload/restore
//! servicing, Analyze integrity + assessment, Plan, Execute, perception,
//! state relaxation, record assembly — and owns no control logic of its
//! own. The logic lives in the stage implementations
//! ([`crate::stages`]), the restore chain ([`crate::restore`]), the
//! defense ([`crate::defense`]), and the shared [`Knowledge`] base.

use crate::envelope::SafetyEnvelope;
use crate::faults::{FaultDefense, FaultPlan, OperatingState};
use crate::knowledge::Knowledge;
use crate::monitor::{RiskEstimator, RiskEstimatorConfig};
use crate::plant::{Perception, Plant};
use crate::policy::Policy;
use crate::record::{RunResult, TickRecord};
use crate::restore::RestoreChain;
use crate::spill::{RecoveryReport, SpillConfig, SpillState, SpillStats};
use crate::stages::{
    Analyze, ChainExecutor, DefaultAnalyze, DefaultMonitor, DefaultPlanner, Execute, Monitor, Plan,
};
use crate::trace::TickTrace;
use crate::{defense, Result, RuntimeError};
use reprune_nn::{Network, Scratch};
use reprune_platform::profile::NetworkProfile;
use reprune_platform::{Bytes, DurableLog, Seconds, SocModel, StorageHealth};
use reprune_prune::spill as prune_spill;
use reprune_prune::{
    ladder_plans, weights_checksum, IntegrityStats, RecordKind, ReversiblePruner, SnapshotRestore,
    SparsityLadder,
};
use reprune_scenario::{OddSpec, Scenario, Tick};
use reprune_tensor::rng::Prng;
use serde::{Deserialize, Serialize};

pub use crate::knowledge::LevelKnowledge;
pub use crate::restore::RestoreMechanism;
// Moved to `reprune_scenario` next to `Weather`; re-exported here for
// compatibility with pre-refactor import paths.
pub use reprune_scenario::weather_to_context;

/// Everything one MAPE-K iteration computes *before* perception: the
/// fused risk estimate and analysis feeding record assembly, plus the
/// rendered frame awaiting classification. Produced by
/// `RuntimeManager::step_begin`, consumed by `step_finish` together with
/// the classification — the seam the fleet executor batches across
/// members.
#[derive(Debug, Clone)]
pub(crate) struct PendingTick {
    /// Fused risk estimate from the Monitor.
    pub(crate) estimated: f64,
    /// The Analyze stage's assessment (ODD membership, envelope cap).
    pub(crate) analysis: crate::stages::Analysis,
    /// Ground-truth scene class of the rendered frame.
    pub(crate) label: usize,
    /// Effective ladder level after Execute (the batched scheduler's
    /// bucket key).
    pub(crate) level: usize,
    /// The rendered frame awaiting classification.
    pub(crate) input: reprune_tensor::Tensor,
}

/// Scale factor mapping the tiny trainable reference model to a
/// deployment-scale perception network (DESIGN.md §5): MACs, weight
/// bytes, and log entries are all multiplied by `factor` when charging
/// platform costs. Accuracy is always measured on the real (small) model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentScale {
    /// Multiplier on MACs / bytes / log entries.
    pub factor: f64,
}

impl Default for DeploymentScale {
    fn default() -> Self {
        // ~54k-param reference CNN × 150 ≈ an 8M-param (33 MB) perception
        // network — ResNet-18 class, the size automotive stacks deploy.
        DeploymentScale { factor: 150.0 }
    }
}

/// Configuration of the runtime manager.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeManagerConfig {
    /// Adaptation policy.
    pub policy: Policy,
    /// Safety envelope over the ladder.
    pub envelope: SafetyEnvelope,
    /// Risk-estimator (Monitor) configuration.
    pub estimator: RiskEstimatorConfig,
    /// Restore mechanism to charge.
    pub mechanism: RestoreMechanism,
    /// Deployment scaling of platform costs.
    pub scale: DeploymentScale,
    /// Platform model.
    pub soc: SocModel,
    /// Seed for per-tick frame rendering.
    pub frame_seed: u64,
    /// Operational Design Domain: outside it the runtime forces full
    /// capacity regardless of the policy (minimal-risk response).
    pub odd: OddSpec,
    /// How much of the fault-tolerance machinery is armed
    /// (see [`FaultDefense`]).
    pub defense: FaultDefense,
    /// Capacity of the tick-event trace ring buffer.
    pub trace_capacity: usize,
    /// Per-tick time budget for amortized restores, seconds (see
    /// [`Knowledge::restore_budget_s`]). `None` keeps one-shot restores.
    pub restore_budget_s: Option<f64>,
    /// Durable reversal-log spill configuration; `None` (the default)
    /// keeps everything in RAM with no crash recovery.
    pub spill: Option<SpillConfig>,
}

impl RuntimeManagerConfig {
    /// A reasonable default configuration for a given envelope.
    pub fn new(policy: Policy, envelope: SafetyEnvelope) -> Self {
        RuntimeManagerConfig {
            policy,
            envelope,
            estimator: RiskEstimatorConfig::default(),
            mechanism: RestoreMechanism::DeltaLog,
            scale: DeploymentScale::default(),
            soc: SocModel::jetson_class(),
            frame_seed: 0,
            odd: OddSpec::permissive(),
            defense: FaultDefense::FullChain,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
            restore_budget_s: None,
            spill: None,
        }
    }

    /// Sets the restore mechanism.
    pub fn mechanism(mut self, mechanism: RestoreMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Sets the frame-rendering seed.
    pub fn frame_seed(mut self, seed: u64) -> Self {
        self.frame_seed = seed;
        self
    }

    /// Sets the estimator configuration.
    pub fn estimator(mut self, estimator: RiskEstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the platform model.
    pub fn soc(mut self, soc: SocModel) -> Self {
        self.soc = soc;
        self
    }

    /// Sets the deployment scale factor.
    pub fn scale(mut self, factor: f64) -> Self {
        self.scale = DeploymentScale { factor };
        self
    }

    /// Sets the Operational Design Domain.
    pub fn odd(mut self, odd: OddSpec) -> Self {
        self.odd = odd;
        self
    }

    /// Sets the fault-defense tier.
    pub fn defense(mut self, defense: FaultDefense) -> Self {
        self.defense = defense;
        self
    }

    /// Sets the trace ring-buffer capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables amortized restores: multi-level climbs back toward
    /// capacity are sliced level by level across ticks, spending at most
    /// `seconds` of restore work per tick (at least one slice per tick).
    pub fn restore_budget(mut self, seconds: f64) -> Self {
        self.restore_budget_s = Some(seconds);
        self
    }

    /// Enables the durable reversal-log spill (crash recovery).
    pub fn spill(mut self, spill: SpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }
}

/// The MAPE-K runtime manager: owns the plant, the knowledge base, the
/// four stages, and the control loop that drives them through a
/// scenario.
pub struct RuntimeManager {
    config: RuntimeManagerConfig,
    plant: Plant,
    knowledge: Knowledge,
    chain: RestoreChain,
    monitor: Box<dyn Monitor>,
    analyzer: Box<dyn Analyze>,
    planner: Box<dyn Plan>,
    executor: Box<dyn Execute>,
    plan: Option<FaultPlan>,
    trace: TickTrace,
    /// Ticks completed so far (across recoveries — a recovered manager
    /// starts at the checkpoint's tick index).
    ticks_done: usize,
    /// Scenario tick index a recovered manager resumes from (0 for a
    /// fresh attach).
    resume_tick: usize,
    /// Fault-plan cursor/RNG state from a recovered checkpoint, applied
    /// to the next plan installed.
    recovered_plan_state: Option<Vec<u64>>,
}

impl RuntimeManager {
    /// Attaches the runtime to a trained network with a pre-built ladder.
    ///
    /// Profiles every ladder level once (the Knowledge base) and
    /// installs the default stage implementations.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if the envelope's level count
    /// disagrees with the ladder or the spill device cannot be created,
    /// or propagates profiling errors.
    pub fn attach(
        net: Network,
        ladder: SparsityLadder,
        config: RuntimeManagerConfig,
    ) -> Result<Self> {
        let mut mgr = Self::attach_core(net, ladder, config)?;
        mgr.enable_spill()?;
        Ok(mgr)
    }

    /// Attach minus spill setup — shared by [`RuntimeManager::attach`]
    /// and [`RuntimeManager::recover`] (which installs its own spill
    /// state from the scanned device instead).
    fn attach_core(
        net: Network,
        ladder: SparsityLadder,
        config: RuntimeManagerConfig,
    ) -> Result<Self> {
        if config.envelope.levels() != ladder.num_levels() {
            return Err(RuntimeError::bad_config(format!(
                "envelope governs {} levels but ladder has {}",
                config.envelope.levels(),
                ladder.num_levels()
            )));
        }
        let input_dims = [1, reprune_nn::dataset::SCENE_SIZE, reprune_nn::dataset::SCENE_SIZE];
        let mut levels = Vec::with_capacity(ladder.num_levels());
        for k in 0..ladder.num_levels() {
            let level = ladder.level(k)?;
            let profile = NetworkProfile::of_masked(&net, &input_dims, Some(&level.masks))?
                .scaled(config.scale.factor);
            levels.push(LevelKnowledge {
                level: k,
                sparsity: level.sparsity,
                inference: config.soc.inference_cost(&profile),
                log_entries: (level.masks.pruned_count() as f64 * config.scale.factor) as usize,
            });
        }
        let model_bytes = Bytes(
            (net.prunable_layers()
                .iter()
                .map(|m| m.weight_len() * 4)
                .sum::<usize>() as f64
                * config.scale.factor) as u64,
        );
        let plans = ladder_plans(&net, &ladder)?;
        let mirror_net = net.clone();
        let mirror_pruner = ReversiblePruner::attach(&mirror_net, ladder.clone())?;
        let mut pruner = ReversiblePruner::attach(&net, ladder)?;
        match config.defense {
            FaultDefense::None => pruner.set_verify_on_pop(false),
            FaultDefense::ChecksumOnly => {}
            FaultDefense::FullChain => pruner.set_shadow_mode(true),
        }
        let snapshot = SnapshotRestore::capture(&net);
        let sealed_checksum = weights_checksum(&net);
        let plant = Plant {
            frame_rng: Prng::new(config.frame_seed),
            corruption_rng: Prng::new(config.frame_seed ^ 0xc0_44u64),
            mirror_checksum: sealed_checksum,
            net,
            pruner,
            plans,
            scratch: Scratch::new(),
            snapshot,
            mirror_net,
            mirror_pruner,
            storage: StorageHealth::new(),
            spill: None,
        };
        let mut knowledge = Knowledge::new(levels, model_bytes, sealed_checksum);
        knowledge.restore_budget_s = config.restore_budget_s;
        let chain = RestoreChain {
            mechanism: config.mechanism,
            scale_factor: config.scale.factor,
            soc: config.soc.clone(),
            model_bytes,
            defense: config.defense,
        };
        let armed = config.defense != FaultDefense::None;
        Ok(RuntimeManager {
            monitor: Box::new(DefaultMonitor::new(RiskEstimator::new(config.estimator), armed)),
            analyzer: Box::new(DefaultAnalyze::new(config.envelope.clone(), config.odd.clone())),
            planner: Box::new(DefaultPlanner::new(config.policy.clone(), config.envelope.clone())),
            executor: Box::new(ChainExecutor),
            plant,
            knowledge,
            chain,
            plan: None,
            trace: TickTrace::new(config.trace_capacity),
            ticks_done: 0,
            resume_tick: 0,
            recovered_plan_state: None,
            config,
        })
    }

    /// Creates the spill device and writes the sealed base-image record
    /// (an unbudgeted bootstrap write: the runtime is not ticking yet).
    fn enable_spill(&mut self) -> Result<()> {
        let Some(cfg) = self.config.spill.clone() else {
            return Ok(());
        };
        let mut log = match &cfg.path {
            Some(p) => DurableLog::create(p)
                .map_err(|e| RuntimeError::bad_config(format!("spill device {p}: {e}")))?,
            None => DurableLog::in_memory(),
        };
        let payload = prune_spill::encode_base(&self.plant.net, 0);
        let frame = prune_spill::frame_record(RecordKind::Base, &payload);
        log.append(&frame)
            .map_err(|e| RuntimeError::bad_config(format!("spill bootstrap append: {e}")))?;
        log.sync()
            .map_err(|e| RuntimeError::bad_config(format!("spill bootstrap sync: {e}")))?;
        self.plant.spill = Some(SpillState::fresh(log, cfg, frame));
        Ok(())
    }

    /// Rebuilds a runtime from a crashed run's spill device.
    ///
    /// Scans the device, discards any torn tail, restores the pristine
    /// base image onto `net`, then replays the latest commit mark whose
    /// segment manifest is satisfiable: reversal-log segments are
    /// reinstalled, recorded in-RAM corruption is reproduced bit-exactly
    /// (log and weight patches), and the cross-stage knowledge, RNG
    /// streams, storage health, stage state, and trace numbering resume
    /// where the crashed run sealed them. Without a usable mark the
    /// manager starts fresh (tick 0) on the surviving device.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] when the device cannot be
    /// read, or propagates attach/replay errors.
    pub fn recover(
        net: Network,
        ladder: SparsityLadder,
        config: RuntimeManagerConfig,
        mut log: DurableLog,
    ) -> Result<(Self, RecoveryReport)> {
        let spill_cfg = config.spill.clone().unwrap_or_default();
        let bytes = log
            .read_all()
            .map_err(|e| RuntimeError::bad_config(format!("spill device read: {e}")))?;
        let res = crate::spill::resolve_scan(&bytes);
        log.truncate(res.valid_len)
            .map_err(|e| RuntimeError::bad_config(format!("spill device truncate: {e}")))?;
        let valid = &bytes[..res.valid_len as usize];
        let mut report = RecoveryReport {
            resumed: false,
            resume_tick: 0,
            records_scanned: res.records_scanned,
            marks_seen: res.marks.len(),
            bytes_discarded: bytes.len() as u64 - res.valid_len,
            log_patches_applied: 0,
            weight_patches_applied: 0,
        };
        let mut net = net;
        let base_ok = match &res.base_payload {
            Some(payload) => prune_spill::apply_base(&mut net, payload).is_ok(),
            None => false,
        };
        let mut mgr = Self::attach_core(net, ladder, config)?;
        let mark = if base_ok { res.best_mark().cloned() } else { None };
        if let Some(m) = &mark {
            let mut segments = Vec::with_capacity(m.manifest.len());
            for h in &m.manifest {
                let payload = res.segments_by_hash.get(h).expect("manifest satisfied");
                segments.push(reprune_prune::pruner::LevelDelta::from_spill_payload(payload)?);
            }
            mgr.plant.pruner.install_log(&mut mgr.plant.net, segments)?;
            for &(seg, idx, bits) in &m.log_patches {
                if mgr.plant.pruner.patch_log_value(seg as usize, idx as usize, bits) {
                    report.log_patches_applied += 1;
                }
            }
            report.weight_patches_applied =
                crate::spill::apply_weight_patches(&mut mgr.plant.net, &m.weight_patches);
            mgr.plant.pruner.import_cursor(m.cursor);
            mgr.plant.sync_mirror()?;
            m.apply_to_knowledge(&mut mgr.knowledge);
            mgr.plant.frame_rng = Prng::from_parts(m.frame_rng.0, m.frame_rng.1);
            mgr.plant.corruption_rng = Prng::from_parts(m.corruption_rng.0, m.corruption_rng.1);
            mgr.plant.storage =
                StorageHealth::from_parts(m.storage.0, m.storage.1, m.storage.2, m.storage.3);
            mgr.monitor.import_state(&m.monitor_words);
            mgr.planner.import_state(&m.planner_words);
            mgr.recovered_plan_state = m.plan_words.clone();
            mgr.trace =
                TickTrace::resume(mgr.config.trace_capacity, m.trace_next_seq, m.trace_dropped);
            mgr.ticks_done = m.tick_index as usize;
            mgr.resume_tick = m.tick_index as usize;
            report.resumed = true;
            report.resume_tick = m.tick_index as usize;
        }
        if base_ok {
            mgr.plant.spill = Some(res.rebuild_spill(valid, log, spill_cfg, mark.as_ref()));
        } else {
            // No usable base image survived, so nothing on the device
            // can ever be replayed: reset it and bootstrap a sealed
            // base record exactly like a first attach.
            log.truncate(0)
                .map_err(|e| RuntimeError::bad_config(format!("spill device reset: {e}")))?;
            let payload = prune_spill::encode_base(&mgr.plant.net, 0);
            let frame = prune_spill::frame_record(RecordKind::Base, &payload);
            log.append(&frame)
                .map_err(|e| RuntimeError::bad_config(format!("spill bootstrap append: {e}")))?;
            log.sync()
                .map_err(|e| RuntimeError::bad_config(format!("spill bootstrap sync: {e}")))?;
            mgr.plant.spill = Some(SpillState::fresh(log, spill_cfg, frame));
        }
        Ok((mgr, report))
    }

    /// The per-level Knowledge base.
    pub fn knowledge(&self) -> &[LevelKnowledge] {
        &self.knowledge.levels
    }

    /// The configuration the runtime was attached with.
    pub fn config(&self) -> &RuntimeManagerConfig {
        &self.config
    }

    /// The full cross-stage knowledge base.
    pub fn knowledge_state(&self) -> &Knowledge {
        &self.knowledge
    }

    /// Current effective ladder level.
    pub fn current_level(&self) -> usize {
        self.plant.pruner.current_level()
    }

    /// Shared access to the managed network.
    pub fn network(&self) -> &Network {
        &self.plant.net
    }

    /// Number of ladder transitions executed so far.
    pub fn transitions(&self) -> usize {
        self.knowledge.transitions
    }

    /// The structured stage-event trace recorded so far.
    pub fn trace(&self) -> &TickTrace {
        &self.trace
    }

    /// Drains the stage-event trace, leaving the ring empty. The fleet
    /// executor uses this to merge member traces after a run.
    pub fn drain_trace(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.drain()
    }

    /// Installs or clears the fleet arbiter's level floor for subsequent
    /// ticks (see [`crate::knowledge::ExternalCap`]). `None` — the
    /// default — leaves planning entirely to the local policy.
    pub fn set_external_cap(&mut self, cap: Option<crate::knowledge::ExternalCap>) {
        self.knowledge.external_cap = cap;
    }

    /// One `(storage_id, bytes)` entry for every weight tensor this
    /// runtime holds: the live network, the fault-free mirror twin, and
    /// the snapshot-restore baseline. Tensors cloned from one trained
    /// model share storage copy-on-write, so deduping by the id measures
    /// the *unique* bytes — the basis of the fleet memory metric.
    pub fn weight_storage(&self) -> Vec<(usize, usize)> {
        let mut out = self.plant.net.param_storage();
        out.extend(self.plant.mirror_net.param_storage());
        out.extend(self.plant.snapshot.weight_storage());
        out
    }

    /// Integrity-action counters of the reversible pruner (verified
    /// pops, scrub checks, shadow repairs, corruption hits).
    pub fn pruner_integrity(&self) -> IntegrityStats {
        self.plant.pruner.integrity_stats()
    }

    /// Replaces the Monitor stage (per-fleet-member estimators).
    pub fn set_monitor(&mut self, monitor: Box<dyn Monitor>) {
        self.monitor = monitor;
    }

    /// Replaces the Analyze stage.
    pub fn set_analyzer(&mut self, analyzer: Box<dyn Analyze>) {
        self.analyzer = analyzer;
    }

    /// Replaces the Plan stage.
    pub fn set_planner(&mut self, planner: Box<dyn Plan>) {
        self.planner = planner;
    }

    /// Replaces the Execute stage.
    pub fn set_executor(&mut self, executor: Box<dyn Execute>) {
        self.executor = executor;
    }

    /// Injects or clears a risk-sensor failure (failure injection for
    /// resilience testing). While failed, the Monitor drives the estimate
    /// toward the configured fail-safe risk, which makes the adaptive
    /// policy restore capacity.
    pub fn set_sensor_failed(&mut self, failed: bool) {
        self.knowledge.manual_sensor_failed = failed;
    }

    /// Injects or clears a confidence-signal dropout. While failed, the
    /// Monitor charges the worst-case confidence deficit (fail-safe).
    pub fn set_confidence_failed(&mut self, failed: bool) {
        self.knowledge.manual_confidence_failed = failed;
    }

    /// Installs a fault campaign to execute against the next run. Pass
    /// `None` to clear. When no plan is installed,
    /// [`RuntimeManager::run`] builds one automatically from the
    /// scenario's scheduled faults. On a recovered manager, the
    /// checkpoint's plan cursor and RNG state are applied to the plan
    /// being installed, so the campaign resumes mid-stream.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
        if self.plan.is_some() {
            self.apply_recovered_plan_state();
        }
    }

    /// Applies a recovered checkpoint's fault-plan cursor/RNG state to
    /// the currently installed plan, once.
    fn apply_recovered_plan_state(&mut self) {
        if let (Some(p), Some(words)) = (self.plan.as_mut(), self.recovered_plan_state.take()) {
            p.import_state(&words);
        }
    }

    /// Persistence counters of the durable spill, when enabled.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.plant.spill.as_ref().map(|s| s.stats())
    }

    /// Bytes currently persisted on the spill device, when enabled.
    pub fn spill_bytes(&self) -> Option<u64> {
        self.plant.spill.as_ref().map(|s| s.durable_len())
    }

    /// Full copy of the spill device's bytes (crash-simulation tests
    /// freeze the device here and hand it to [`RuntimeManager::recover`]
    /// via [`DurableLog::from_bytes`]).
    pub fn spill_device_bytes(&mut self) -> Option<Vec<u8>> {
        self.plant.spill.as_mut().and_then(|s| s.device_bytes().ok())
    }

    /// Ticks completed so far (carries across recoveries).
    pub fn ticks_done(&self) -> usize {
        self.ticks_done
    }

    /// Scenario tick index this manager resumes from (0 unless built by
    /// [`RuntimeManager::recover`]).
    pub fn resume_tick(&self) -> usize {
        self.resume_tick
    }

    /// Current rung of the degradation state machine.
    pub fn op_state(&self) -> OperatingState {
        self.knowledge.op_state
    }

    /// Health of the model-image storage device.
    pub fn storage(&self) -> &StorageHealth {
        &self.plant.storage
    }

    /// Effective fault injections so far (windows at onset; bit-flips
    /// that actually landed).
    pub fn faults_injected(&self) -> usize {
        self.knowledge.faults_injected
    }

    /// Faults the armed defense noticed.
    pub fn faults_detected(&self) -> usize {
        self.knowledge.faults_detected
    }

    /// Faults resolved by repair or a successful fallback restore.
    pub fn faults_repaired(&self) -> usize {
        self.knowledge.faults_repaired
    }

    /// Read access to the plant for the fleet executor's batched
    /// classification phase (shared network/plan views, per-member
    /// checksum fields).
    pub(crate) fn plant(&self) -> &Plant {
        &self.plant
    }

    /// Runs one MAPE-K iteration for a scenario tick, returning the
    /// record.
    ///
    /// Internally this is three phases — [`RuntimeManager::step_begin`]
    /// (everything through frame rendering), classification, and
    /// [`RuntimeManager::step_finish`] (state relaxation + record
    /// assembly + persistence). The fleet executor drives the phases
    /// separately so same-configuration members can share one fused
    /// batched classification; stepping them here back-to-back is
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// Propagates pruning/inference errors.
    pub fn step(&mut self, tick: &Tick, dt: f64) -> Result<TickRecord> {
        let pending = self.step_begin(tick, dt)?;
        let seen = self.classify_pending(&pending)?;
        self.step_finish(tick, dt, &pending, seen)
    }

    /// The pre-perception phases of one MAPE-K iteration: fault
    /// injection, Monitor, reload/restore servicing, integrity, risk
    /// estimation, assessment, Plan, Execute, mirror sync, and frame
    /// rendering. All weight mutation completes here; what remains is a
    /// read-only classification plus record assembly.
    pub(crate) fn step_begin(&mut self, tick: &Tick, dt: f64) -> Result<PendingTick> {
        let (k, plant, chain, trace) = (
            &mut self.knowledge,
            &mut self.plant,
            &self.chain,
            &mut self.trace,
        );
        k.begin_tick();

        // Environment: fire scheduled fault events up to this tick.
        let armed = self.config.defense != FaultDefense::None;
        defense::inject_scheduled(&mut self.plan, k, plant, armed, tick, trace);

        // Monitor: channel health and fault-window escalation.
        self.monitor.observe_health(k, plant, tick, trace);

        // Execute (async half): complete or retry a pending storage
        // reload before anything else touches the weights.
        self.executor.service_reload(k, plant, chain, tick, trace)?;

        // Analyze (defense half): background scrub + sealed checksum.
        self.analyzer.verify_integrity(k, plant, chain, tick, trace)?;

        // Execute (async half): complete a due multi-tick ladder restore.
        self.executor.service_restore(k, plant, chain, tick, trace)?;

        // Monitor: fuse risk sensor + last confidence.
        let estimated = self.monitor.estimate(k, tick);

        // Analyze: ODD membership and envelope cap.
        let analysis = self.analyzer.assess(k, tick, estimated);

        // Plan: level selection under the degradation caps.
        let current = plant.pruner.current_level();
        let directive = self.planner.plan(k, &analysis, current, tick, trace);

        // Execute: drive the pruner toward the target.
        self.executor
            .apply(k, plant, chain, &directive, tick, dt, trace)?;

        // Ground-truth twin follows the same effective level, fault-free.
        plant.sync_mirror()?;

        // Perception (render half): the frame RNG advances here, in the
        // same order the fused path always advanced it.
        let (label, input) = plant.render_frame(tick.weather);
        Ok(PendingTick {
            estimated,
            analysis,
            label,
            level: plant.pruner.current_level(),
            input,
        })
    }

    /// Classifies a pending tick's rendered frame through this member's
    /// own scratch arena — the serial (unbatched) perception path.
    pub(crate) fn classify_pending(&mut self, pending: &PendingTick) -> Result<Perception> {
        self.plant.classify(&pending.input, pending.label)
    }

    /// The post-perception phases of one MAPE-K iteration: confidence
    /// feedback, state relaxation, record assembly, and the persistence
    /// slice. `seen` must be the classification of `pending` — either
    /// [`RuntimeManager::classify_pending`] or a bit-identical fused
    /// batched classification.
    pub(crate) fn step_finish(
        &mut self,
        tick: &Tick,
        dt: f64,
        pending: &PendingTick,
        seen: Perception,
    ) -> Result<TickRecord> {
        let estimated = pending.estimated;
        let analysis = pending.analysis;
        let (k, plant, trace) = (&mut self.knowledge, &mut self.plant, &mut self.trace);
        k.last_confidence = seen.confidence;

        // De-escalate once fault triggers have cleared.
        k.relax_state(plant, tick.t, trace);

        // Record assembly.
        let effective = plant.pruner.current_level();
        let lk = k.levels[effective].clone();
        let overrun = if tick.t < k.overrun_until {
            k.overrun_extra_s
        } else {
            0.0
        };
        let inference_latency = Seconds(lk.inference.latency.0 + overrun);
        let violation = effective > analysis.max_allowed_level
            || (!analysis.inside_odd && effective > 0)
            || (k.op_state == OperatingState::MinimalRisk && (effective > 0 || k.integrity_bad));
        let deadline_miss = inference_latency.0 + k.tick.sync_latency_s > dt;
        if deadline_miss {
            k.note_deadline_miss(
                tick.t,
                inference_latency.0 + k.tick.sync_latency_s,
                dt,
                trace,
            );
        }
        let rec = TickRecord {
            t: tick.t,
            true_risk: tick.risk,
            estimated_risk: estimated,
            level: effective,
            sparsity: lk.sparsity,
            max_allowed_level: analysis.max_allowed_level,
            odd_exit: !analysis.inside_odd,
            violation,
            correct: seen.pred == seen.label,
            confidence: seen.confidence,
            inference_energy: lk.inference.energy,
            inference_latency,
            transition_energy: k.tick.transition_energy,
            transition_latency: k.tick.transition_latency,
            segment: tick.segment,
            weather: tick.weather,
            op_state: k.op_state,
            faults_injected: k.tick.injected,
            fault_detected: k.tick.detected,
            fault_repaired: k.tick.repaired,
            corrupt_inference: seen.corrupt_inference,
            deadline_miss,
        };

        // Persistence: spill reversal-log changes and, when everything
        // a checkpoint depends on is durable, seal a commit mark.
        self.service_spill(tick, seen.corrupt_inference);
        self.ticks_done += 1;
        Ok(rec)
    }

    /// The per-tick persistence slice: reconcile the spill's view with
    /// the live reversal log, run the budgeted appends, and — when the
    /// device holds everything and budget remains — seal a commit mark
    /// checkpointing the full runtime state.
    fn service_spill(&mut self, tick: &Tick, corrupt_inference: bool) {
        let Some(mut spill) = self.plant.spill.take() else {
            return;
        };
        spill.sync_view(&self.plant.pruner);
        let ready = spill.service_appends(&self.plant.storage, tick.t, &mut self.trace);
        if ready {
            let log_patches = spill.log_deviations(&self.plant.pruner);
            let weight_patches = if corrupt_inference {
                crate::spill::weight_divergence(&self.plant.net, &self.plant.mirror_net)
            } else {
                Vec::new()
            };
            let payload = crate::spill::encode_mark(&crate::spill::MarkInputs {
                tick_index: self.ticks_done as u64 + 1,
                t: tick.t,
                current_level: self.plant.pruner.current_level() as u32,
                cursor: self.plant.pruner.export_cursor(),
                manifest: spill.manifest(),
                log_patches,
                weight_patches,
                k: &self.knowledge,
                frame_rng: self.plant.frame_rng.state_parts(),
                corruption_rng: self.plant.corruption_rng.state_parts(),
                storage: self.plant.storage.state_parts(),
                monitor_words: self.monitor.export_state(),
                planner_words: self.planner.export_state(),
                plan_words: self.plan.as_ref().map(|p| p.export_state()),
                trace_next_seq: self.trace.next_seq(),
                trace_dropped: self.trace.dropped(),
            });
            spill.append_mark(&payload, &self.plant.storage, tick.t, &mut self.trace);
        }
        self.plant.spill = Some(spill);
    }

    /// Drives a whole scenario, returning per-tick records, aggregates,
    /// and the stage-event trace.
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run(&mut self, scenario: &Scenario) -> Result<RunResult> {
        self.run_from(scenario, 0)
    }

    /// Drives a scenario starting at tick index `start` (clamped to the
    /// scenario length) — how a recovered manager resumes: pass
    /// [`RuntimeManager::resume_tick`]. Aggregates cover the resumed
    /// span only; the trace continues the crashed run's numbering.
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run_from(&mut self, scenario: &Scenario, start: usize) -> Result<RunResult> {
        // Faults scheduled on the scenario become the campaign, unless a
        // plan was installed explicitly.
        if self.plan.is_none() && !scenario.faults().is_empty() {
            self.plan = Some(FaultPlan::from_scenario(scenario, self.config.frame_seed));
        }
        // A recovered checkpoint resumes the campaign mid-stream.
        self.apply_recovered_plan_state();
        let dt = scenario.config().dt_s;
        let start = start.min(scenario.ticks().len());
        let mut records = Vec::with_capacity(scenario.ticks().len() - start);
        let mut total_energy = reprune_platform::Joules::ZERO;
        let mut violations = 0usize;
        let mut recovery_latencies = Vec::new();
        let mut recovery_start: Option<f64> = None;
        let dense = self.knowledge.levels[0].inference.energy;
        for tick in &scenario.ticks()[start..] {
            let rec = self.step(tick, dt)?;
            total_energy += rec.inference_energy + rec.transition_energy;
            if rec.violation {
                violations += 1;
                if recovery_start.is_none() {
                    recovery_start = Some(rec.t);
                }
            } else if let Some(start) = recovery_start.take() {
                recovery_latencies.push(rec.t - start);
            }
            records.push(rec);
        }
        Ok(RunResult {
            policy: self.planner.policy_name(),
            mechanism: self.config.mechanism.to_string(),
            defense: self.config.defense.to_string(),
            dense_energy: dense * records.len() as f64,
            total_energy,
            violations,
            recovery_latencies,
            transitions: self.knowledge.transitions,
            faults_injected: self.knowledge.faults_injected,
            faults_detected: self.knowledge.faults_detected,
            faults_repaired: self.knowledge.faults_repaired,
            fault_recovery_latencies: self.knowledge.fault_recoveries.clone(),
            trace_dropped: self.trace.dropped(),
            trace: self.trace.drain(),
            records,
        })
    }
}
