//! Fault application and the armed integrity defense.
//!
//! Two halves live here, both operating purely on `(Knowledge, Plant)`:
//!
//! * [`inject_scheduled`] — the *environment* side: realizes scheduled
//!   [`FaultEvent`]s against the live system (fault windows, storage
//!   faults, log and weight bit-flips).
//! * [`verify_integrity`] — the *Analyze* side: the background scrub and
//!   the sealed whole-weights checksum, escalating through the restore
//!   chain when something is wrong.

use crate::faults::{self, FaultDefense, FaultPlan, OperatingState};
use crate::knowledge::Knowledge;
use crate::plant::Plant;
use crate::restore::{ChainReport, RestoreChain};
use crate::trace::{ChainHop, DetectionSource, StageId, TickTrace, TraceEventKind};
use crate::Result;
use reprune_prune::{weights_checksum, PruneError};
use reprune_scenario::{FaultEvent, FaultKind, Tick};
use reprune_tensor::rng::Prng;

/// Stable kebab-case name of a fault family (for trace events).
pub fn fault_kind_name(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::SensorBlackout { .. } => "sensor-blackout",
        FaultKind::ConfidenceDropout { .. } => "confidence-dropout",
        FaultKind::StorageTransient { .. } => "storage-transient",
        FaultKind::StoragePermanent => "storage-permanent",
        FaultKind::StorageDegraded { .. } => "storage-degraded",
        FaultKind::ExecOverrun { .. } => "exec-overrun",
        FaultKind::LogBitFlip { .. } => "log-bit-flip",
        FaultKind::WeightBitFlip { .. } => "weight-bit-flip",
        FaultKind::TornWrite { .. } => "torn-write",
        FaultKind::TruncatedTail { .. } => "truncated-tail",
    }
}

/// Fires every scheduled fault event due at or before `tick.t` against
/// the live system and folds the effective injection count into the
/// knowledge base.
pub fn inject_scheduled(
    plan: &mut Option<FaultPlan>,
    k: &mut Knowledge,
    plant: &mut Plant,
    armed: bool,
    tick: &Tick,
    trace: &mut TickTrace,
) {
    if let Some(p) = plan.as_mut() {
        let fired = p.fire_until(tick.t);
        for ev in fired {
            let before = k.tick.injected;
            apply_fault(k, plant, &ev, p.rng_mut(), armed, trace);
            trace.record(
                tick.t,
                StageId::Environment,
                TraceEventKind::FaultInjected {
                    kind: fault_kind_name(&ev.kind),
                    landed: k.tick.injected - before,
                },
            );
        }
    }
    k.faults_injected += k.tick.injected as usize;
}

/// Realizes one scheduled fault event against the live system.
///
/// Window faults are self-announcing: an armed health monitor notices
/// them at onset. Bit-flips are only caught by checksums.
pub fn apply_fault(
    k: &mut Knowledge,
    plant: &mut Plant,
    ev: &FaultEvent,
    rng: &mut Prng,
    armed: bool,
    trace: &mut TickTrace,
) {
    // Shared onset bookkeeping for the self-announcing window faults.
    macro_rules! announce {
        () => {{
            k.tick.injected += 1;
            if armed {
                k.tick.detected = true;
                k.note_detected(ev.start_s, StageId::Monitor, DetectionSource::WindowOnset, trace);
            }
        }};
    }
    match ev.kind {
        FaultKind::SensorBlackout { duration_s } => {
            k.sensor_fault_until = k.sensor_fault_until.max(ev.start_s + duration_s);
            announce!();
        }
        FaultKind::ConfidenceDropout { duration_s } => {
            k.confidence_fault_until = k.confidence_fault_until.max(ev.start_s + duration_s);
            announce!();
        }
        FaultKind::StorageTransient { duration_s } => {
            plant.storage.inject_transient(ev.start_s, duration_s);
            announce!();
        }
        FaultKind::StoragePermanent => {
            plant.storage.fail_permanently();
            announce!();
        }
        FaultKind::StorageDegraded {
            bandwidth_factor,
            duration_s,
        } => {
            plant
                .storage
                .inject_degradation(ev.start_s, duration_s, bandwidth_factor);
            announce!();
        }
        FaultKind::ExecOverrun {
            extra_ms,
            duration_s,
        } => {
            k.overrun_until = k.overrun_until.max(ev.start_s + duration_s);
            k.overrun_extra_s = extra_ms / 1000.0;
            announce!();
        }
        FaultKind::LogBitFlip { flips } => {
            for _ in 0..flips {
                if let Some(segment) = plant.pruner.inject_log_bitflip(rng) {
                    k.tick.injected += 1;
                    // The durable spill's copy of the segment is now
                    // stale relative to RAM; reconciliation happens at
                    // the next commit mark.
                    if let Some(spill) = plant.spill.as_mut() {
                        spill.mark_log_dirty(segment);
                    }
                }
            }
        }
        FaultKind::WeightBitFlip { flips } => {
            // The in-RAM snapshot occupies as much DRAM as the live
            // weights, so an upset is equally likely to land in
            // either region (the snapshot damage only surfaces when
            // the snapshot hop is used).
            for _ in 0..flips {
                if rng.next_bool(0.5) {
                    k.snapshot_flips += 1;
                    k.tick.injected += 1;
                } else if faults::inject_weight_bitflip(&mut plant.net, rng) {
                    k.tick.injected += 1;
                }
            }
        }
        // Durable-spill media faults are *not* self-announcing: they are
        // only noticed by the spill's read-back and boundary checks.
        FaultKind::TornWrite { keep_bytes } => {
            if let Some(spill) = plant.spill.as_mut() {
                if spill.inject_torn_write(keep_bytes) {
                    k.tick.injected += 1;
                }
            }
        }
        FaultKind::TruncatedTail { bytes } => {
            if let Some(spill) = plant.spill.as_mut() {
                if spill.chop_tail(bytes) {
                    k.tick.injected += 1;
                }
            }
        }
    }
}

/// The defense half of the Analyze stage: one incremental scrub step
/// over the reversal log (full chain only) and the sealed whole-weights
/// checksum verification, with escalation through the restore chain.
///
/// # Errors
///
/// Propagates non-recoverable restore errors.
pub fn verify_integrity(
    k: &mut Knowledge,
    plant: &mut Plant,
    chain: &RestoreChain,
    tick: &Tick,
    trace: &mut TickTrace,
) -> Result<()> {
    if chain.defense == FaultDefense::FullChain && k.pending_reload.is_none() {
        if let Err(PruneError::LogCorruption { segment, .. }) = plant.pruner.scrub_step() {
            k.tick.detected = true;
            k.note_detected(tick.t, StageId::Analyze, DetectionSource::Scrub, trace);
            k.enter_state(OperatingState::Degraded, tick.t, trace);
            if plant.pruner.repair_segment(segment).is_ok() {
                k.tick.repaired = true;
                k.note_repaired(tick.t, StageId::Analyze, ChainHop::ShadowRepair, trace);
            } else {
                k.log_bad = true;
            }
        }
    }
    if chain.defense != FaultDefense::None
        && k.pending_reload.is_none()
        && !k.integrity_bad
        && weights_checksum(&plant.net) != k.sealed_checksum
    {
        k.tick.detected = true;
        k.note_detected(tick.t, StageId::Analyze, DetectionSource::SealedChecksum, trace);
        k.integrity_bad = true;
        k.enter_state(OperatingState::Degraded, tick.t, trace);
        if chain.defense == FaultDefense::FullChain {
            let mut rep = ChainReport::default();
            chain.fallback_snapshot(k, plant, tick.t, &mut rep, trace)?;
            k.absorb(rep);
        } else {
            // Detected but unrepairable: force minimal risk.
            k.enter_state(OperatingState::MinimalRisk, tick.t, trace);
        }
    }
    Ok(())
}
