//! The safety envelope: how much capacity each risk level demands.

use crate::{Result, RuntimeError};
use serde::{Deserialize, Serialize};

/// Maps context risk to the maximum ladder level (sparsity) safety allows.
///
/// For a ladder with `L` levels the envelope stores `L-1` strictly
/// decreasing risk thresholds: level `k ≥ 1` is permitted only while risk
/// is *below* `thresholds[k-1]`. Level 0 (full capacity) is always
/// permitted. A risk at or above `thresholds[0]` therefore demands full
/// capacity — that is the *critical* threshold used for violation
/// accounting.
///
/// # Example
///
/// ```
/// use reprune_runtime::SafetyEnvelope;
///
/// # fn main() -> Result<(), reprune_runtime::RuntimeError> {
/// // 4-level ladder: prune to level 3 only below risk 0.2, level 2 below
/// // 0.4, level 1 below 0.6; at ≥ 0.6 full capacity is mandatory.
/// let env = SafetyEnvelope::new(vec![0.6, 0.4, 0.2])?;
/// assert_eq!(env.max_level(0.7), 0);
/// assert_eq!(env.max_level(0.5), 1);
/// assert_eq!(env.max_level(0.1), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyEnvelope {
    thresholds: Vec<f64>,
}

impl SafetyEnvelope {
    /// Creates an envelope from strictly decreasing risk thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if the list is empty, not
    /// strictly decreasing, or leaves `(0, 1)`.
    pub fn new(thresholds: Vec<f64>) -> Result<Self> {
        if thresholds.is_empty() {
            return Err(RuntimeError::bad_config("envelope needs ≥1 threshold"));
        }
        for pair in thresholds.windows(2) {
            if pair[1] >= pair[0] {
                return Err(RuntimeError::bad_config(format!(
                    "thresholds must strictly decrease: {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        if thresholds.iter().any(|&t| !(0.0..1.0).contains(&t) || t <= 0.0) {
            return Err(RuntimeError::bad_config(
                "thresholds must lie strictly inside (0, 1)",
            ));
        }
        Ok(SafetyEnvelope { thresholds })
    }

    /// Builds an evenly spaced envelope for a ladder with `levels` levels,
    /// with the critical threshold at `critical_risk`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] for fewer than 2 levels or an
    /// out-of-range critical risk.
    pub fn evenly_spaced(levels: usize, critical_risk: f64) -> Result<Self> {
        if levels < 2 {
            return Err(RuntimeError::bad_config(
                "an envelope needs a ladder with ≥2 levels",
            ));
        }
        if !(0.0..1.0).contains(&critical_risk) || critical_risk <= 0.0 {
            return Err(RuntimeError::bad_config(
                "critical risk must lie strictly inside (0, 1)",
            ));
        }
        let n = levels - 1;
        let thresholds = (0..n)
            .map(|k| critical_risk * (n - k) as f64 / n as f64)
            .collect();
        SafetyEnvelope::new(thresholds)
    }

    /// Number of ladder levels this envelope governs.
    pub fn levels(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// The risk at or above which full capacity is mandatory.
    pub fn critical_risk(&self) -> f64 {
        self.thresholds[0]
    }

    /// Maximum ladder level permitted at `risk`.
    pub fn max_level(&self, risk: f64) -> usize {
        self.thresholds
            .iter()
            .take_while(|&&t| risk < t)
            .count()
    }

    /// The thresholds, level-1-first.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_level_boundaries() {
        let env = SafetyEnvelope::new(vec![0.6, 0.4, 0.2]).unwrap();
        assert_eq!(env.levels(), 4);
        assert_eq!(env.critical_risk(), 0.6);
        assert_eq!(env.max_level(0.0), 3);
        assert_eq!(env.max_level(0.19), 3);
        assert_eq!(env.max_level(0.2), 2, "boundary is exclusive");
        assert_eq!(env.max_level(0.39), 2);
        assert_eq!(env.max_level(0.4), 1);
        assert_eq!(env.max_level(0.6), 0);
        assert_eq!(env.max_level(1.0), 0);
    }

    #[test]
    fn max_level_is_monotone_nonincreasing_in_risk() {
        let env = SafetyEnvelope::evenly_spaced(5, 0.7).unwrap();
        let mut prev = usize::MAX;
        for i in 0..=100 {
            let lvl = env.max_level(i as f64 / 100.0);
            assert!(lvl <= prev);
            prev = lvl;
        }
    }

    #[test]
    fn evenly_spaced_spacing() {
        let env = SafetyEnvelope::evenly_spaced(4, 0.6).unwrap();
        let t = env.thresholds();
        assert_eq!(t.len(), 3);
        assert!((t[0] - 0.6).abs() < 1e-12);
        assert!((t[1] - 0.4).abs() < 1e-12);
        assert!((t[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(SafetyEnvelope::new(vec![]).is_err());
        assert!(SafetyEnvelope::new(vec![0.4, 0.6]).is_err(), "not decreasing");
        assert!(SafetyEnvelope::new(vec![0.5, 0.5]).is_err(), "not strict");
        assert!(SafetyEnvelope::new(vec![1.0]).is_err(), "out of range");
        assert!(SafetyEnvelope::new(vec![0.0]).is_err(), "zero threshold");
        assert!(SafetyEnvelope::evenly_spaced(1, 0.5).is_err());
        assert!(SafetyEnvelope::evenly_spaced(4, 1.5).is_err());
    }
}
