//! `FleetRuntime`: N MAPE-K runtimes stepped concurrently on one clock
//! under live shared-budget arbitration.
//!
//! The fleet module ([`crate::fleet`]) plans a shared energy budget over
//! *static* member profiles; this module closes the loop and actually
//! **runs** the fleet. Every tick:
//!
//! 1. **Arbitrate** — [`crate::fleet::plan_budget_prevalidated`] turns
//!    the members' current risks and the tick's budget into per-member
//!    ladder levels (member profiles are validated once, at
//!    construction).
//! 2. **Inject** — each arbitrated level becomes an
//!    [`ExternalCap`](crate::knowledge::ExternalCap) on that member's
//!    Plan stage: a level *floor* the local policy may deepen but not
//!    undercut, always clamped by the member's own safety envelope.
//! 3. **Step** — all members execute one MAPE-K iteration concurrently
//!    on a persistent work-stealing pool ([`crate::pool`]): workers park
//!    between ticks, claim member indices from an atomic counter, and
//!    write results by index, so the output is identical to serial
//!    stepping. With [`FleetRuntime::set_batched`] the tick additionally
//!    fuses same-configuration members' forward passes into one batched
//!    GEMM per layer (DESIGN.md §14) — still byte-identical.
//! 4. **Record** — a [`FleetTickRecord`] aggregates per-member
//!    level/energy/utility, the arbitration decision, and budget slack.
//!
//! Members cloned from one trained network share their dense base
//! weights copy-on-write (`reprune-tensor`'s `Arc` storage), so an
//! N-member fleet holds ~1× the dense weights plus per-member reversal
//! logs instead of N× full copies.

use crate::fleet::{plan_budget_prevalidated, BudgetPlan, FleetMember};
use crate::knowledge::ExternalCap;
use crate::manager::{PendingTick, RuntimeManager};
use crate::plant::Perception;
use crate::pool::{SharedMut, Slots, StepPool};
use crate::record::TickRecord;
use crate::trace::TraceEvent;
use crate::{Result, RuntimeError};
use reprune_nn::BatchScratch;
use reprune_platform::Joules;
use reprune_prune::{plan_signature, weights_checksum};
use reprune_scenario::{Scenario, Tick};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One member's slice of a [`FleetTickRecord`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberTick {
    /// Arbitrated level floor handed to the member's Plan stage.
    pub cap: usize,
    /// Effective ladder level after the member's own MAPE-K step.
    pub level: usize,
    /// Profiled inference energy at the effective level.
    pub energy: Joules,
    /// Profiled utility at the effective level.
    pub utility: f64,
    /// Whether the member's step flagged a safety violation.
    pub violation: bool,
    /// The member's full per-tick record.
    pub record: TickRecord,
}

/// Fleet-level observability for one shared-clock tick.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTickRecord {
    /// Tick time, seconds.
    pub t: f64,
    /// Budget the arbiter planned against (`None` = unlimited).
    pub budget: Option<Joules>,
    /// The arbitration decision (levels, planned totals, feasibility).
    pub plan: BudgetPlan,
    /// Per-member outcomes, fleet order.
    pub members: Vec<MemberTick>,
    /// Realized fleet inference energy this tick (sum over members at
    /// their *effective* levels, which local safety logic may have
    /// driven away from the arbitrated ones).
    pub total_energy: Joules,
    /// Budget minus realized energy; `None` when the budget is
    /// unlimited. Negative slack means local safety overrides (restores,
    /// degradation caps) pushed the fleet over its allowance.
    pub slack: Option<f64>,
}

/// A stage-event trace entry tagged with the member that recorded it.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTraceEvent {
    /// Index of the member in fleet order.
    pub member: usize,
    /// The member's trace event.
    pub event: TraceEvent,
}

/// Unique-vs-naive weight-storage accounting for a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStorageBytes {
    /// Bytes of physically distinct weight storage (deduped by storage
    /// id across every member's live net, mirror twin, and snapshot).
    pub unique: usize,
    /// Bytes the same tensors would occupy without sharing (the sum of
    /// every copy's length).
    pub total: usize,
}

/// What a whole fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunResult {
    /// Member names, fleet order.
    pub names: Vec<String>,
    /// One record per scenario tick.
    pub ticks: Vec<FleetTickRecord>,
    /// All members' stage events, merged and ordered by time (ties by
    /// member, then by each member's own sequence number).
    pub trace: Vec<FleetTraceEvent>,
}

impl FleetRunResult {
    /// Total safety violations across all members and ticks.
    pub fn violations(&self) -> usize {
        self.ticks
            .iter()
            .flat_map(|t| &t.members)
            .filter(|m| m.violation)
            .count()
    }

    /// Safety violations of one member across the run.
    pub fn member_violations(&self, member: usize) -> usize {
        self.ticks
            .iter()
            .filter(|t| t.members[member].violation)
            .count()
    }

    /// Ticks whose arbitration could not meet the budget even with
    /// every member at its envelope cap.
    pub fn infeasible_ticks(&self) -> usize {
        self.ticks.iter().filter(|t| !t.plan.feasible).count()
    }

    /// Realized fleet inference energy over the whole run.
    pub fn total_energy(&self) -> Joules {
        self.ticks.iter().map(|t| t.total_energy).sum()
    }

    /// Mean per-tick fleet utility (sum of member utilities at their
    /// effective levels, averaged over ticks). `0.0` for an empty run.
    pub fn mean_utility(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .ticks
            .iter()
            .map(|t| t.members.iter().map(|m| m.utility).sum::<f64>())
            .sum();
        total / self.ticks.len() as f64
    }

    /// Mean effective ladder level of one member over the run.
    pub fn mean_level(&self, member: usize) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        let total: usize = self.ticks.iter().map(|t| t.members[member].level).sum();
        total as f64 / self.ticks.len() as f64
    }
}

/// N concurrently executing MAPE-K runtimes under one budget arbiter.
///
/// Build one manager per fleet member (cloning a shared trained network
/// keeps the dense weights in one copy), attach each to its own
/// [`RuntimeManager`], and hand them to [`FleetRuntime::new`] together
/// with a per-level utility profile (e.g. validation accuracy). The
/// member profiles are validated once here; the per-tick arbitration
/// then runs on the prevalidated fast path.
pub struct FleetRuntime {
    profiles: Vec<FleetMember>,
    managers: Vec<RuntimeManager>,
    workers: usize,
    batched: bool,
    /// Persistent worker pool; built lazily for the first multi-worker
    /// step and rebuilt only when the effective pool size changes.
    pool: Option<StepPool>,
    /// Fleet-level arena for fused batched classification.
    batch: BatchScratch,
    /// Members classified through a fused batched forward pass (counts
    /// only fusions of ≥ 2 members) since construction / stat reset.
    batched_members: u64,
    /// Members stepped while batched mode was on, fused or not.
    stepped_members: u64,
}

impl FleetRuntime {
    /// Assembles a fleet from `(name, manager, utility_per_level)`
    /// members.
    ///
    /// Each member's energy profile comes from its manager's attach-time
    /// Knowledge base; envelope and profile consistency is validated
    /// once, here, so the per-tick planner never re-validates.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if the fleet is empty or any
    /// member's profile is inconsistent (wrong length, non-monotone
    /// energy/utility).
    pub fn new(members: Vec<(String, RuntimeManager, Vec<f64>)>) -> Result<Self> {
        if members.is_empty() {
            return Err(RuntimeError::bad_config("fleet is empty"));
        }
        let mut profiles = Vec::with_capacity(members.len());
        let mut managers = Vec::with_capacity(members.len());
        for (name, manager, utility) in members {
            // `from_knowledge` runs the full member validation.
            profiles.push(FleetMember::from_knowledge(
                name,
                manager.config().envelope.clone(),
                manager.knowledge(),
                utility,
            )?);
            managers.push(manager);
        }
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        Ok(FleetRuntime {
            profiles,
            managers,
            workers,
            batched: false,
            pool: None,
            batch: BatchScratch::new(),
            batched_members: 0,
            stepped_members: 0,
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// `false` always — construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// The validated member profiles, fleet order.
    pub fn profiles(&self) -> &[FleetMember] {
        &self.profiles
    }

    /// Shared access to one member's runtime.
    pub fn manager(&self, member: usize) -> &RuntimeManager {
        &self.managers[member]
    }

    /// Exclusive access to one member's runtime (crash-recovery flows
    /// freeze and inspect member spill devices through this).
    pub fn manager_mut(&mut self, member: usize) -> &mut RuntimeManager {
        &mut self.managers[member]
    }

    /// Caps the worker pool (clamped to at least 1). Workers default to
    /// the machine's available parallelism; `1` forces serial stepping —
    /// the baseline the fleet benchmark compares against. Changing the
    /// count retires the current persistent pool; the next multi-worker
    /// step builds one at the new size.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers != self.workers {
            self.workers = workers;
            self.pool = None;
        }
    }

    /// Turns the batched same-level classification scheduler on or off.
    ///
    /// When on, each tick runs in three phases: every member's MAPE-K
    /// pre-perception half, then one fused forward pass per bucket of
    /// members with identical (ladder level, execution plan, weight
    /// storage) configuration, then every member's post-perception half.
    /// Members that do not share configuration — e.g. mid-CoW-detach
    /// after a fault — fall back to their own serial classification, so
    /// results stay byte-identical to unbatched stepping either way.
    pub fn set_batched(&mut self, on: bool) {
        self.batched = on;
    }

    /// Whether the batched classification scheduler is on.
    pub fn batched(&self) -> bool {
        self.batched
    }

    /// Fraction of members (stepped while batching was on) whose
    /// classification ran inside a fused batch of ≥ 2 members. `0.0`
    /// before any batched step.
    pub fn batch_occupancy(&self) -> f64 {
        if self.stepped_members == 0 {
            0.0
        } else {
            self.batched_members as f64 / self.stepped_members as f64
        }
    }

    /// Resets the batching-occupancy counters (benchmarks call this
    /// between phases so occupancy reflects one measured span).
    pub fn reset_batch_stats(&mut self) {
        self.batched_members = 0;
        self.stepped_members = 0;
    }

    /// Threads the current persistent pool would use for a phase
    /// (workers plus the stepping thread), or 1 before any pooled step.
    pub fn pool_size(&self) -> usize {
        self.pool.as_ref().map_or(1, StepPool::size)
    }

    /// Builds (or rebuilds) the persistent pool so a phase runs on
    /// exactly `effective` threads including the caller.
    fn ensure_pool(&mut self, effective: usize) {
        debug_assert!(effective > 1);
        if self.pool.as_ref().map(StepPool::size) != Some(effective) {
            self.pool = Some(StepPool::new(effective - 1));
        }
    }

    /// Unique-vs-naive bytes of weight storage across the whole fleet
    /// (every member's live network, mirror twin, and snapshot,
    /// deduped by tensor storage identity).
    pub fn weight_storage_bytes(&self) -> FleetStorageBytes {
        let mut seen: Vec<usize> = Vec::new();
        let mut unique = 0usize;
        let mut total = 0usize;
        for m in &self.managers {
            for (id, bytes) in m.weight_storage() {
                total += bytes;
                if !seen.contains(&id) {
                    seen.push(id);
                    unique += bytes;
                }
            }
        }
        FleetStorageBytes { unique, total }
    }

    /// One arbitrated, concurrent fleet step with every member at the
    /// tick's shared context risk. See [`FleetRuntime::step_with_risks`].
    ///
    /// # Errors
    ///
    /// Propagates arbitration and member step errors.
    pub fn step_all(
        &mut self,
        tick: &Tick,
        dt: f64,
        budget: Option<Joules>,
    ) -> Result<FleetTickRecord> {
        let risks = vec![tick.risk; self.managers.len()];
        self.step_with_risks(tick, dt, &risks, budget)
    }

    /// One arbitrated, concurrent fleet step with explicit per-member
    /// risks: arbitrates the budget, injects the per-member caps, steps
    /// every member on the worker pool, and aggregates the record.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] for invalid risks (NaN,
    /// infinite, negative, wrong count) and propagates member step
    /// errors.
    pub fn step_with_risks(
        &mut self,
        tick: &Tick,
        dt: f64,
        risks: &[f64],
        budget: Option<Joules>,
    ) -> Result<FleetTickRecord> {
        let plan = plan_budget_prevalidated(&self.profiles, risks, budget)?;
        for (manager, &level) in self.managers.iter_mut().zip(&plan.levels) {
            manager.set_external_cap(Some(ExternalCap { level }));
        }
        let records = self.step_members(tick, dt)?;
        let members: Vec<MemberTick> = records
            .iter()
            .zip(&self.profiles)
            .zip(&plan.levels)
            .map(|((rec, profile), &cap)| MemberTick {
                cap,
                level: rec.level,
                energy: profile.energy_per_level[rec.level],
                utility: profile.utility_per_level[rec.level],
                violation: rec.violation,
                record: *rec,
            })
            .collect();
        let total_energy: Joules = members.iter().map(|m| m.energy).sum();
        Ok(FleetTickRecord {
            t: tick.t,
            budget,
            plan,
            slack: budget.map(|b| b.0 - total_energy.0),
            total_energy,
            members,
        })
    }

    /// Steps every member once, concurrently when the pool has more than
    /// one worker. Results land in per-member slots, so the outcome is
    /// identical to serial stepping regardless of worker count.
    fn step_members(&mut self, tick: &Tick, dt: f64) -> Result<Vec<TickRecord>> {
        let n = self.managers.len();
        let workers = self.workers.min(n);
        if self.batched {
            return self.step_members_batched(tick, dt, workers);
        }
        if workers <= 1 {
            return self.managers.iter_mut().map(|m| m.step(tick, dt)).collect();
        }
        self.ensure_pool(workers);
        let pool = self.pool.as_ref().expect("ensure_pool built a pool");
        let mut slots: Vec<Option<Result<TickRecord>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        {
            let out = Slots::new(&mut slots);
            let members = SharedMut::new(&mut self.managers);
            let next = AtomicUsize::new(0);
            pool.run(&|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= members.len() {
                    break;
                }
                // SAFETY: the claim counter hands `i` to exactly one
                // pool thread; every index writes only its own slot.
                let manager = unsafe { members.get_mut(i) };
                let record = manager.step(tick, dt);
                unsafe { out.put(i, record) };
            });
        }
        slots
            .into_iter()
            .map(|s| s.expect("every member slot is filled by its worker"))
            .collect()
    }

    /// The batched three-phase step: pooled pre-perception halves, a
    /// main-thread fused classification over same-configuration buckets,
    /// and pooled post-perception halves.
    ///
    /// Fusion requires byte-level configuration identity — same ladder
    /// level, `==`-equal execution plan, and identical parameter storage
    /// ids (so the bucket genuinely shares one set of weights). Everyone
    /// else classifies through the serial per-member path. Both routes
    /// produce bit-identical perceptions, so the tick records and traces
    /// match unbatched stepping exactly.
    fn step_members_batched(
        &mut self,
        tick: &Tick,
        dt: f64,
        workers: usize,
    ) -> Result<Vec<TickRecord>> {
        let n = self.managers.len();
        if workers > 1 {
            self.ensure_pool(workers);
        }

        // Phase A — every member's MAPE-K half up through frame
        // rendering. All weight mutation (pruning, restores, faults)
        // completes here, so phase B sees settled configurations.
        let mut pending_slots: Vec<Option<Result<PendingTick>>> = Vec::with_capacity(n);
        pending_slots.resize_with(n, || None);
        if workers <= 1 {
            for (manager, slot) in self.managers.iter_mut().zip(pending_slots.iter_mut()) {
                *slot = Some(manager.step_begin(tick, dt));
            }
        } else {
            let pool = self.pool.as_ref().expect("ensure_pool built a pool");
            let out = Slots::new(&mut pending_slots);
            let members = SharedMut::new(&mut self.managers);
            let next = AtomicUsize::new(0);
            pool.run(&|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= members.len() {
                    break;
                }
                // SAFETY: claim-loop exclusivity (see `step_members`).
                let manager = unsafe { members.get_mut(i) };
                let begun = manager.step_begin(tick, dt);
                unsafe { out.put(i, begun) };
            });
        }
        let mut pending: Vec<PendingTick> = Vec::with_capacity(n);
        for slot in pending_slots {
            pending.push(slot.expect("every member slot is filled by its worker")?);
        }

        // Phase B — bucket members by (level, plan signature). The
        // signature is a filter; candidates are verified below with
        // exact plan and storage-id comparison before fusing.
        let mut buckets: Vec<((usize, u64), Vec<usize>)> = Vec::new();
        for (i, (manager, p)) in self.managers.iter().zip(&pending).enumerate() {
            let sig = manager
                .plant()
                .plans
                .get(p.level)
                .map_or(0, plan_signature);
            let key = (p.level, sig);
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => buckets.push((key, vec![i])),
            }
        }

        let mut perceptions: Vec<Option<Perception>> = vec![None; n];
        let mut serial: Vec<usize> = Vec::new();
        let mut fused_members = 0u64;
        for ((level, _), members) in &buckets {
            let rep = members[0];
            let rep_plan = self.managers[rep].plant().plans.get(*level);
            let rep_storage = self.managers[rep].plant().net.param_storage();
            let mut fused: Vec<usize> = vec![rep];
            for &i in &members[1..] {
                let plant = self.managers[i].plant();
                if plant.plans.get(*level) == rep_plan
                    && plant.net.param_storage() == rep_storage
                {
                    fused.push(i);
                } else {
                    // Signature collision or detached storage (e.g. a
                    // faulted member mid-CoW-detach): serial fallback.
                    serial.push(i);
                }
            }
            if fused.len() < 2 {
                serial.extend(fused);
                continue;
            }
            // One shared-weight checksum stands in for every fused
            // member's own: identical storage ids ⇒ identical weights.
            let shared_checksum = weights_checksum(&self.managers[rep].plant().net);
            let inputs: Vec<&reprune_tensor::Tensor> =
                fused.iter().map(|&i| &pending[i].input).collect();
            let mut outs: Vec<(usize, f32)> = Vec::with_capacity(fused.len());
            self.managers[rep].plant().net.predict_batched(
                &inputs,
                rep_plan,
                &mut self.batch,
                &mut outs,
            )?;
            for (&i, &(pred, confidence)) in fused.iter().zip(&outs) {
                perceptions[i] = Some(Perception {
                    pred,
                    label: pending[i].label,
                    confidence: confidence as f64,
                    corrupt_inference: shared_checksum
                        != self.managers[i].plant().mirror_checksum,
                });
            }
            fused_members += fused.len() as u64;
        }
        for &i in &serial {
            perceptions[i] = Some(self.managers[i].classify_pending(&pending[i])?);
        }
        let seen: Vec<Perception> = perceptions
            .into_iter()
            .map(|p| p.expect("every member classified, fused or serial"))
            .collect();
        self.batched_members += fused_members;
        self.stepped_members += n as u64;

        // Phase C — every member's post-perception half.
        let mut record_slots: Vec<Option<Result<TickRecord>>> = Vec::with_capacity(n);
        record_slots.resize_with(n, || None);
        if workers <= 1 {
            for (i, (manager, slot)) in self
                .managers
                .iter_mut()
                .zip(record_slots.iter_mut())
                .enumerate()
            {
                *slot = Some(manager.step_finish(tick, dt, &pending[i], seen[i]));
            }
        } else {
            let pool = self.pool.as_ref().expect("ensure_pool built a pool");
            let out = Slots::new(&mut record_slots);
            let members = SharedMut::new(&mut self.managers);
            let next = AtomicUsize::new(0);
            pool.run(&|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= members.len() {
                    break;
                }
                // SAFETY: claim-loop exclusivity (see `step_members`).
                let manager = unsafe { members.get_mut(i) };
                let record = manager.step_finish(tick, dt, &pending[i], seen[i]);
                unsafe { out.put(i, record) };
            });
        }
        record_slots
            .into_iter()
            .map(|s| s.expect("every member slot is filled by its worker"))
            .collect()
    }

    /// Drives a whole scenario under a constant budget.
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run(&mut self, scenario: &Scenario, budget: Option<Joules>) -> Result<FleetRunResult> {
        self.run_with(scenario, |_| budget)
    }

    /// Drives a whole scenario, asking `budget` for each tick's energy
    /// allowance (shrinking-budget campaigns hand in a schedule here).
    /// Scenario-scheduled faults are installed as each member's fault
    /// campaign, exactly as [`RuntimeManager::run`] would.
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run_with<F>(&mut self, scenario: &Scenario, budget: F) -> Result<FleetRunResult>
    where
        F: FnMut(&Tick) -> Option<Joules>,
    {
        self.run_span(scenario, budget, 0)
    }

    /// Drives a scenario from tick index `start` under a constant
    /// budget — how a fleet of recovered members resumes after a crash
    /// (members checkpoint every committed tick, so their resume ticks
    /// agree whenever the spill was keeping up; pass the common
    /// [`RuntimeManager::resume_tick`]).
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run_from(
        &mut self,
        scenario: &Scenario,
        budget: Option<Joules>,
        start: usize,
    ) -> Result<FleetRunResult> {
        self.run_span(scenario, |_| budget, start)
    }

    /// [`FleetRuntime::run_with`] generalized to a starting tick index
    /// (clamped to the scenario length).
    ///
    /// # Errors
    ///
    /// Propagates per-tick errors.
    pub fn run_span<F>(
        &mut self,
        scenario: &Scenario,
        mut budget: F,
        start: usize,
    ) -> Result<FleetRunResult>
    where
        F: FnMut(&Tick) -> Option<Joules>,
    {
        if !scenario.faults().is_empty() {
            for manager in &mut self.managers {
                let seed = manager.config().frame_seed;
                // `set_fault_plan` folds in a recovered member's plan
                // cursor, resuming the campaign mid-stream.
                manager.set_fault_plan(Some(crate::faults::FaultPlan::from_scenario(
                    scenario, seed,
                )));
            }
        }
        let dt = scenario.config().dt_s;
        let start = start.min(scenario.ticks().len());
        let mut ticks = Vec::with_capacity(scenario.ticks().len() - start);
        for tick in &scenario.ticks()[start..] {
            let b = budget(tick);
            ticks.push(self.step_all(tick, dt, b)?);
        }
        let mut trace = Vec::new();
        for (member, manager) in self.managers.iter_mut().enumerate() {
            trace.extend(
                manager
                    .drain_trace()
                    .into_iter()
                    .map(|event| FleetTraceEvent { member, event }),
            );
        }
        trace.sort_by(|a, b| {
            a.event
                .t
                .total_cmp(&b.event.t)
                .then(a.member.cmp(&b.member))
                .then(a.event.seq.cmp(&b.event.seq))
        });
        Ok(FleetRunResult {
            names: self.profiles.iter().map(|p| p.name.clone()).collect(),
            ticks,
            trace,
        })
    }
}
