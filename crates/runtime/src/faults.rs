//! Fault-injection campaigns and the graceful-degradation state machine.
//!
//! A [`FaultPlan`] turns the fault events scheduled on a
//! [`reprune_scenario::Scenario`] timeline into deterministic injections
//! against the running system: bit-flips into the reversal log and live
//! weights, storage outages and bandwidth degradation, sensor/confidence
//! dropouts, and Execute-stage deadline overruns. The
//! [`crate::manager::RuntimeManager`] consumes the plan tick by tick and
//! answers with the configured [`FaultDefense`]:
//!
//! * [`FaultDefense::None`] — no checks at all; corrupted reversal-log
//!   segments are applied blindly (the silent-corruption baseline),
//! * [`FaultDefense::ChecksumOnly`] — per-segment checksums verify every
//!   pop and a sealed whole-weights checksum is re-verified every tick,
//!   but nothing can be repaired: detected faults park the system in
//!   minimal-risk mode,
//! * [`FaultDefense::FullChain`] — detection plus the restore fallback
//!   chain: shadow-copy log repair → in-RAM snapshot → storage reload
//!   with bounded exponential backoff, and incremental background
//!   scrubbing of the log.
//!
//! The degradation ladder itself is [`OperatingState`]:
//! `Normal → Degraded → MinimalRisk`, mirroring the ODD-exit response.

use reprune_nn::Network;
use reprune_scenario::{FaultEvent, FaultKind, Scenario};
use reprune_tensor::rng::Prng;
use serde::{Deserialize, Serialize};

/// How much of the fault-tolerance machinery is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultDefense {
    /// No integrity checks: corruption is served silently.
    None,
    /// Detection only (segment checksums + sealed weights checksum);
    /// detected faults cannot be repaired.
    ChecksumOnly,
    /// Detection plus the full restore fallback chain and background
    /// log scrubbing.
    FullChain,
}

impl std::fmt::Display for FaultDefense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultDefense::None => "no-defense",
            FaultDefense::ChecksumOnly => "checksum-only",
            FaultDefense::FullChain => "full-chain",
        };
        write!(f, "{s}")
    }
}

/// The graceful-degradation state machine.
///
/// Ordered by severity: the manager only ever escalates within a fault
/// episode and de-escalates one rung at a time once the trigger clears.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum OperatingState {
    /// Everything verified; the policy runs unrestricted.
    Normal,
    /// A fault is active or being resolved: the ladder is pinned at
    /// conservative levels (no deep pruning) until the system is clean.
    Degraded,
    /// Restoration integrity is compromised: full capacity is forced if
    /// reachable; while it is not (or weights remain unverified), every
    /// tick is flagged as a safety violation — the analogue of the
    /// minimal-risk manoeuvre on ODD exit.
    MinimalRisk,
}

impl std::fmt::Display for OperatingState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperatingState::Normal => "normal",
            OperatingState::Degraded => "degraded",
            OperatingState::MinimalRisk => "minimal-risk",
        };
        write!(f, "{s}")
    }
}

/// A deterministic, seeded fault campaign over one scenario run.
///
/// Events fire in timeline order exactly once; random placement inside
/// an injection (which log entry, which weight, which bit) is drawn from
/// the plan's own [`Prng`], so the same plan against the same scenario
/// reproduces the same damage bit for bit.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
    rng: Prng,
}

impl FaultPlan {
    /// Builds a plan from explicit events (sorted by onset internally).
    pub fn new(mut events: Vec<FaultEvent>, seed: u64) -> Self {
        events.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        FaultPlan {
            events,
            cursor: 0,
            rng: Prng::new(seed ^ 0x5eed_fa01_7000_0001),
        }
    }

    /// Builds a plan from the faults scheduled on a scenario.
    pub fn from_scenario(scenario: &Scenario, seed: u64) -> Self {
        FaultPlan::new(scenario.faults().to_vec(), seed)
    }

    /// All events in the plan, sorted by onset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Fires (returns and consumes) every event with onset at or before
    /// `t`. Each event fires exactly once across a run.
    pub fn fire_until(&mut self, t: f64) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].start_s <= t {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// The plan's injection-placement RNG.
    pub fn rng_mut(&mut self) -> &mut Prng {
        &mut self.rng
    }

    /// Serializes the plan's mutable state (fire cursor and placement
    /// RNG position) as plain words for crash-recovery checkpoints. The
    /// event list itself is regenerated deterministically from the
    /// scenario and seed on recovery.
    pub fn export_state(&self) -> Vec<u64> {
        let (state, spare) = self.rng.state_parts();
        let mut out = Vec::with_capacity(7);
        out.push(self.cursor as u64);
        out.extend_from_slice(&state);
        out.push(u64::from(spare.is_some()));
        out.push(u64::from(spare.unwrap_or(0.0).to_bits()));
        out
    }

    /// Restores state exported by [`FaultPlan::export_state`]. Ignores
    /// malformed input (wrong length); the cursor is clamped to the
    /// event count.
    pub fn import_state(&mut self, words: &[u64]) {
        if words.len() != 7 {
            return;
        }
        self.cursor = (words[0] as usize).min(self.events.len());
        let state = [words[1], words[2], words[3], words[4]];
        let spare = if words[5] != 0 {
            Some(f32::from_bits(words[6] as u32))
        } else {
            None
        };
        self.rng = Prng::from_parts(state, spare);
    }
}

/// Flips one random mantissa bit in one random live prunable weight.
///
/// Mantissa-only flips (bits 0..23 of the `f32` encoding) model DRAM
/// single-bit upsets while keeping every value finite, so accuracy
/// accounting stays well-defined. Returns `false` if the network has no
/// prunable weights.
pub fn inject_weight_bitflip(net: &mut Network, rng: &mut Prng) -> bool {
    let metas = net.prunable_layers();
    let total: usize = metas.iter().map(|m| m.weight_len()).sum();
    if total == 0 {
        return false;
    }
    let mut idx = rng.next_below(total);
    for meta in metas {
        let len = meta.weight_len();
        if idx < len {
            let bit = rng.next_below(23) as u32;
            if let Ok(w) = net.weight_mut(meta.id) {
                let v = w.data()[idx];
                w.data_mut()[idx] = f32::from_bits(v.to_bits() ^ (1u32 << bit));
                return true;
            }
            return false;
        }
        idx -= len;
    }
    false
}

/// Parameters of a generated fault storm: independent Poisson streams of
/// each fault family over `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Storm window start (seconds from scenario start).
    pub start_s: f64,
    /// Storm window end (exclusive).
    pub end_s: f64,
    /// Arrival rate of reversal-log bit-flip bursts (Hz).
    pub log_flip_rate_hz: f64,
    /// Arrival rate of live-weight bit-flip bursts (Hz).
    pub weight_flip_rate_hz: f64,
    /// Arrival rate of transient storage outages (Hz).
    pub storage_outage_rate_hz: f64,
    /// Arrival rate of storage bandwidth-degradation windows (Hz).
    pub storage_degrade_rate_hz: f64,
    /// Arrival rate of sensor blackouts (Hz).
    pub sensor_rate_hz: f64,
    /// Arrival rate of confidence-signal dropouts (Hz).
    pub confidence_rate_hz: f64,
    /// Arrival rate of Execute-stage overrun windows (Hz).
    pub overrun_rate_hz: f64,
    /// Arrival rate of torn writes against the durable reversal-log
    /// spill (Hz). Zero unless the spill is under test.
    pub torn_write_rate_hz: f64,
    /// Arrival rate of durable-spill tail truncations (Hz). Zero unless
    /// the spill is under test.
    pub truncated_tail_rate_hz: f64,
}

impl StormConfig {
    /// A mild storm: occasional single faults of each family.
    pub fn mild(start_s: f64, end_s: f64) -> Self {
        StormConfig {
            start_s,
            end_s,
            log_flip_rate_hz: 1.0 / 40.0,
            weight_flip_rate_hz: 1.0 / 60.0,
            storage_outage_rate_hz: 1.0 / 90.0,
            storage_degrade_rate_hz: 1.0 / 120.0,
            sensor_rate_hz: 1.0 / 120.0,
            confidence_rate_hz: 1.0 / 120.0,
            overrun_rate_hz: 1.0 / 90.0,
            torn_write_rate_hz: 0.0,
            truncated_tail_rate_hz: 0.0,
        }
    }

    /// A severe storm: faults of every family land every few seconds.
    pub fn severe(start_s: f64, end_s: f64) -> Self {
        StormConfig {
            start_s,
            end_s,
            log_flip_rate_hz: 1.0 / 8.0,
            weight_flip_rate_hz: 1.0 / 15.0,
            storage_outage_rate_hz: 1.0 / 25.0,
            storage_degrade_rate_hz: 1.0 / 40.0,
            sensor_rate_hz: 1.0 / 40.0,
            confidence_rate_hz: 1.0 / 40.0,
            overrun_rate_hz: 1.0 / 30.0,
            torn_write_rate_hz: 0.0,
            truncated_tail_rate_hz: 0.0,
        }
    }

    /// Adds durable-spill media faults (torn writes and tail
    /// truncations) to the storm at the given rates.
    pub fn with_spill_faults(mut self, torn_write_rate_hz: f64, truncated_tail_rate_hz: f64) -> Self {
        self.torn_write_rate_hz = torn_write_rate_hz;
        self.truncated_tail_rate_hz = truncated_tail_rate_hz;
        self
    }
}

/// Generates a deterministic fault storm from `config` and `seed`:
/// independent exponential inter-arrival streams per fault family,
/// sorted by onset. Feed the result to
/// [`reprune_scenario::Scenario::with_faults`] or straight into
/// [`FaultPlan::new`].
pub fn storm_events(config: &StormConfig, seed: u64) -> Vec<FaultEvent> {
    fn stream(
        config: &StormConfig,
        rate_hz: f64,
        rng: &mut Prng,
        mk: &mut dyn FnMut(&mut Prng) -> FaultKind,
        out: &mut Vec<FaultEvent>,
    ) {
        if rate_hz <= 0.0 {
            return;
        }
        let mut t = config.start_s;
        loop {
            let u = (1.0 - rng.next_f32() as f64).max(1e-12);
            t += -u.ln() / rate_hz;
            if t >= config.end_s {
                break;
            }
            out.push(FaultEvent {
                start_s: t,
                kind: mk(rng),
            });
        }
    }
    let mut rng = Prng::new(seed ^ 0x5701_4e00_0000_0001u64);
    let mut events = Vec::new();
    stream(
        config,
        config.log_flip_rate_hz,
        &mut rng,
        &mut |r| FaultKind::LogBitFlip {
            flips: 1 + r.next_below(3) as u32,
        },
        &mut events,
    );
    stream(
        config,
        config.weight_flip_rate_hz,
        &mut rng,
        &mut |r| FaultKind::WeightBitFlip {
            flips: 1 + r.next_below(2) as u32,
        },
        &mut events,
    );
    stream(
        config,
        config.storage_outage_rate_hz,
        &mut rng,
        &mut |r| FaultKind::StorageTransient {
            duration_s: 1.0 + r.next_uniform(0.0, 4.0) as f64,
        },
        &mut events,
    );
    stream(
        config,
        config.storage_degrade_rate_hz,
        &mut rng,
        &mut |r| FaultKind::StorageDegraded {
            bandwidth_factor: 0.1 + r.next_uniform(0.0, 0.4) as f64,
            duration_s: 5.0 + r.next_uniform(0.0, 10.0) as f64,
        },
        &mut events,
    );
    stream(
        config,
        config.sensor_rate_hz,
        &mut rng,
        &mut |r| FaultKind::SensorBlackout {
            duration_s: 0.5 + r.next_uniform(0.0, 2.5) as f64,
        },
        &mut events,
    );
    stream(
        config,
        config.confidence_rate_hz,
        &mut rng,
        &mut |r| FaultKind::ConfidenceDropout {
            duration_s: 0.5 + r.next_uniform(0.0, 2.5) as f64,
        },
        &mut events,
    );
    stream(
        config,
        config.overrun_rate_hz,
        &mut rng,
        &mut |r| FaultKind::ExecOverrun {
            extra_ms: 20.0 + r.next_uniform(0.0, 80.0) as f64,
            duration_s: 1.0 + r.next_uniform(0.0, 3.0) as f64,
        },
        &mut events,
    );
    // Durable-spill media faults come last so that storms with these
    // rates at zero (every pre-existing storm) draw exactly the same
    // random stream as before they existed.
    stream(
        config,
        config.torn_write_rate_hz,
        &mut rng,
        &mut |r| FaultKind::TornWrite {
            keep_bytes: r.next_below(48) as u64,
        },
        &mut events,
    );
    stream(
        config,
        config.truncated_tail_rate_hz,
        &mut rng,
        &mut |r| FaultKind::TruncatedTail {
            bytes: 1 + r.next_below(256) as u64,
        },
        &mut events,
    );
    events.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_each_event_once_in_order() {
        let events = vec![
            FaultEvent {
                start_s: 5.0,
                kind: FaultKind::StoragePermanent,
            },
            FaultEvent {
                start_s: 1.0,
                kind: FaultKind::LogBitFlip { flips: 1 },
            },
            FaultEvent {
                start_s: 3.0,
                kind: FaultKind::SensorBlackout { duration_s: 2.0 },
            },
        ];
        let mut plan = FaultPlan::new(events, 7);
        assert_eq!(plan.remaining(), 3);
        assert!(plan.fire_until(0.5).is_empty());
        let first = plan.fire_until(1.0);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].start_s, 1.0);
        let rest = plan.fire_until(100.0);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].start_s, 3.0);
        assert_eq!(rest[1].start_s, 5.0);
        assert_eq!(plan.remaining(), 0);
        assert!(plan.fire_until(1000.0).is_empty());
    }

    #[test]
    fn storm_is_deterministic_and_sorted() {
        let cfg = StormConfig::severe(10.0, 60.0);
        let a = storm_events(&cfg, 42);
        let b = storm_events(&cfg, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "severe storm over 50 s must produce faults");
        for pair in a.windows(2) {
            assert!(pair[0].start_s <= pair[1].start_s);
        }
        for ev in &a {
            assert!(ev.start_s >= 10.0 && ev.start_s < 60.0);
        }
        let c = storm_events(&cfg, 43);
        assert_ne!(a, c, "different seeds give different storms");
    }

    #[test]
    fn spill_fault_streams_do_not_perturb_existing_storms() {
        let base = StormConfig::severe(10.0, 60.0);
        let with = base.with_spill_faults(1.0 / 10.0, 1.0 / 20.0);
        let a = storm_events(&base, 42);
        let b = storm_events(&with, 42);
        // Every original event survives unchanged…
        for ev in &a {
            assert!(b.contains(ev), "missing original event {ev:?}");
        }
        // …and the extras are exactly the new fault families.
        assert!(b.len() > a.len(), "spill rates must add events");
        let mut torn = 0;
        let mut chopped = 0;
        for ev in &b {
            match ev.kind {
                FaultKind::TornWrite { keep_bytes } => {
                    torn += 1;
                    assert!(keep_bytes < 48);
                }
                FaultKind::TruncatedTail { bytes } => {
                    chopped += 1;
                    assert!((1..=256).contains(&bytes));
                }
                _ => assert!(a.contains(ev)),
            }
        }
        assert!(torn > 0 && chopped > 0);
    }

    #[test]
    fn plan_state_round_trip_resumes_cursor_and_rng() {
        let cfg = StormConfig::severe(0.0, 30.0);
        let events = storm_events(&cfg, 5);
        let mut a = FaultPlan::new(events.clone(), 77);
        a.fire_until(12.0);
        let _ = a.rng_mut().next_f32();
        let words = a.export_state();
        let mut b = FaultPlan::new(events, 77);
        b.import_state(&words);
        assert_eq!(a.remaining(), b.remaining());
        assert_eq!(a.fire_until(30.0), b.fire_until(30.0));
        assert_eq!(a.rng_mut().next_f32(), b.rng_mut().next_f32());
        // Malformed input is ignored.
        let before_remaining = b.remaining();
        b.import_state(&[1, 2]);
        assert_eq!(b.remaining(), before_remaining);
    }

    #[test]
    fn weight_bitflip_changes_exactly_one_value() {
        let mut net = reprune_nn::models::control_mlp(4, &[8], 3, 1).unwrap();
        let original = net.clone();
        let mut rng = Prng::new(9);
        assert!(inject_weight_bitflip(&mut net, &mut rng));
        let mut diffs = 0usize;
        for meta in original.prunable_layers() {
            let a = original.weight(meta.id).unwrap();
            let b = net.weight(meta.id).unwrap();
            for (x, y) in a.data().iter().zip(b.data()) {
                if x.to_bits() != y.to_bits() {
                    diffs += 1;
                    assert!(y.is_finite(), "mantissa flip must stay finite");
                }
            }
        }
        assert_eq!(diffs, 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(FaultDefense::None.to_string(), "no-defense");
        assert_eq!(FaultDefense::ChecksumOnly.to_string(), "checksum-only");
        assert_eq!(FaultDefense::FullChain.to_string(), "full-chain");
        assert_eq!(OperatingState::Normal.to_string(), "normal");
        assert_eq!(OperatingState::Degraded.to_string(), "degraded");
        assert_eq!(OperatingState::MinimalRisk.to_string(), "minimal-risk");
    }

    #[test]
    fn state_severity_ordering() {
        assert!(OperatingState::Normal < OperatingState::Degraded);
        assert!(OperatingState::Degraded < OperatingState::MinimalRisk);
    }
}
