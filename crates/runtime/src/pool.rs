//! A persistent work-stealing worker pool for fleet stepping.
//!
//! [`crate::FleetRuntime`] used to spawn a fresh `std::thread::scope`
//! every tick; at fleet tick rates the spawn/join cost rivaled the work.
//! [`StepPool`] keeps its workers alive across ticks, parked on their job
//! channels between phases, so per-tick overhead is one wake message per
//! worker plus a completion rendezvous.
//!
//! # Execution model
//!
//! A phase is a closure that *claims* work items from a shared atomic
//! counter until the counter runs dry (work stealing over member
//! indices — no static sharding, so a member mid-restore cannot stall a
//! whole chunk assigned to one worker). [`StepPool::run`] hands every
//! worker a pointer to the same closure, participates in the claim loop
//! itself on the calling thread, and then blocks until every worker has
//! reported the phase done. Only then does it return — which is what
//! makes the raw borrow of the caller's stack sound.
//!
//! # Determinism
//!
//! Workers race only for *which* index they claim; every result lands in
//! that index's dedicated slot ([`Slots`]). The merged outcome is
//! therefore identical to serial execution regardless of worker count or
//! scheduling order — the fleet's byte-identity oracle tests pin this.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A type-erased, lifetime-erased pointer to the phase closure.
///
/// The pointee lives on the stack of the thread inside
/// [`StepPool::run`], which does not return until every worker has
/// signaled completion — so the pointer never dangles while a worker
/// holds it.
struct TaskRef(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (asserted by the type) and `run` keeps it
// alive for the entire time any worker can dereference it.
unsafe impl Send for TaskRef {}

enum Job {
    /// Run one phase; report completion on the done channel.
    Run(TaskRef),
    /// Exit the worker loop.
    Shutdown,
}

/// Persistent worker pool: `extra` parked worker threads plus the calling
/// thread, cooperating on claim-loop phases. Dropping the pool shuts the
/// workers down and joins them.
pub(crate) struct StepPool {
    job_txs: Vec<Sender<Job>>,
    done_rx: Receiver<bool>,
    handles: Vec<JoinHandle<()>>,
}

impl StepPool {
    /// Spawns `extra` worker threads (the calling thread is the final
    /// pool member, so total parallelism is `extra + 1`).
    pub(crate) fn new(extra: usize) -> Self {
        let (done_tx, done_rx) = channel::<bool>();
        let mut job_txs = Vec::with_capacity(extra);
        let mut handles = Vec::with_capacity(extra);
        for i in 0..extra {
            let (tx, rx) = channel::<Job>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("fleet-worker-{i}"))
                .spawn(move || worker_loop(&rx, &done))
                .expect("spawn fleet worker");
            job_txs.push(tx);
            handles.push(handle);
        }
        StepPool {
            job_txs,
            done_rx,
            handles,
        }
    }

    /// Total parallelism of a phase: worker threads + the calling thread.
    pub(crate) fn size(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs one phase on every worker plus the calling thread, returning
    /// once all of them have drained the claim loop.
    ///
    /// `task` must be safe to invoke concurrently from multiple threads
    /// (it is `Sync`); the claim-loop idiom — each invocation pulls
    /// disjoint indices from an atomic counter — satisfies this.
    ///
    /// # Panics
    ///
    /// Panics if any worker's phase invocation panicked (the panic is
    /// contained to the worker, reported at the rendezvous, and re-raised
    /// here so a broken member step cannot be silently dropped).
    pub(crate) fn run(&self, task: &(dyn Fn() + Sync)) {
        // SAFETY (lifetime erasure): `task` outlives this call, and this
        // call does not return before every worker has signaled `done`
        // for this phase — no worker can touch the pointer afterwards.
        let ptr: TaskRef = unsafe {
            TaskRef(std::mem::transmute::<
                *const (dyn Fn() + Sync + '_),
                *const (dyn Fn() + Sync + 'static),
            >(task as *const _))
        };
        for tx in &self.job_txs {
            tx.send(Job::Run(TaskRef(ptr.0))).expect("fleet worker alive");
        }
        // The calling thread is a pool member too: steal until dry.
        task();
        let mut worker_panicked = false;
        for _ in &self.job_txs {
            worker_panicked |= self.done_rx.recv().expect("fleet worker reports completion");
        }
        assert!(
            !worker_panicked,
            "a fleet worker panicked during a pooled phase"
        );
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        for tx in &self.job_txs {
            // A worker that already exited (panicked channel) is fine to
            // skip; join below reaps it either way.
            let _ = tx.send(Job::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Receiver<Job>, done: &Sender<bool>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Run(task) => {
                // SAFETY: `StepPool::run` guarantees the pointee is alive
                // until this worker's `done` send is received.
                let panicked =
                    catch_unwind(AssertUnwindSafe(|| unsafe { (*task.0)() })).is_err();
                if done.send(panicked).is_err() {
                    return;
                }
            }
            Job::Shutdown => return,
        }
    }
}

/// Per-index result slots a pooled phase scatters into.
///
/// Wraps a raw pointer to the slot vector living on the caller's stack so
/// the `Sync` phase closure can write results. Soundness rests on the
/// claim-loop discipline: the atomic counter hands each index to exactly
/// one worker, so no slot is ever aliased mutably.
pub(crate) struct Slots<T> {
    base: *mut Option<T>,
    len: usize,
}

// SAFETY: disjoint-index writes only (see type docs); `T: Send` moves
// each value across the worker boundary exactly once.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// Wraps a pre-sized slot vector (`vec![None; n]`-style).
    pub(crate) fn new(slots: &mut [Option<T>]) -> Self {
        Slots {
            base: slots.as_mut_ptr(),
            len: slots.len(),
        }
    }

    /// Stores `value` into slot `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and claimed by exactly one worker for
    /// the duration of the phase (the claim-loop counter guarantees
    /// both).
    pub(crate) unsafe fn put(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        *self.base.add(index) = Some(value);
    }
}

/// A raw, `Sync` view of a mutable element array that a claim-loop phase
/// indexes into — the managers themselves during fleet stepping.
///
/// Same soundness argument as [`Slots`]: the atomic claim counter hands
/// each index to exactly one worker, so `&mut` access per index is
/// exclusive even though the view itself is shared.
pub(crate) struct SharedMut<T> {
    base: *mut T,
    len: usize,
}

// SAFETY: disjoint-index access only (see type docs); `T: Send` lets the
// exclusive borrow be used from the claiming worker's thread.
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Wraps a mutable slice.
    pub(crate) fn new(items: &mut [T]) -> Self {
        SharedMut {
            base: items.as_mut_ptr(),
            len: items.len(),
        }
    }

    /// Number of elements in the underlying slice.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Exclusive access to element `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and claimed by exactly one worker for
    /// the duration of the phase.
    #[allow(clippy::mut_from_ref)] // The claim-loop contract *is* the exclusivity proof.
    pub(crate) unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        &mut *self.base.add(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_claim_loop_phases_and_fills_every_slot() {
        let pool = StepPool::new(3);
        assert_eq!(pool.size(), 4);
        let mut values: Vec<u64> = (0..64).collect();
        for round in 0..5u64 {
            let mut slots: Vec<Option<u64>> = (0..values.len()).map(|_| None).collect();
            {
                let out = Slots::new(&mut slots);
                let items = SharedMut::new(&mut values);
                let next = AtomicUsize::new(0);
                pool.run(&|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // SAFETY: `i` is claimed exactly once via the counter.
                    let v = unsafe { items.get_mut(i) };
                    *v += round;
                    unsafe { out.put(i, *v * 2) };
                });
            }
            for (i, s) in slots.iter().enumerate() {
                let expected = (i as u64 + (0..=round).sum::<u64>()) * 2;
                assert_eq!(*s, Some(expected), "slot {i} round {round}");
            }
        }
    }

    #[test]
    fn pool_reports_worker_panics_at_the_rendezvous() {
        let pool = StepPool::new(2);
        let next = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|| {
                // Exactly one claimer panics; the others drain normally.
                if next.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "the phase panic must propagate");
        // The pool must still be usable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(&|| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3, "all members still run");
    }
}
