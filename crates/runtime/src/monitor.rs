//! The Monitor stage: fusing a noisy risk sensor with model confidence.

use reprune_tensor::rng::Prng;
use serde::{Deserialize, Serialize};

/// Configuration of the risk estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskEstimatorConfig {
    /// EWMA smoothing factor in `(0, 1]`; 1 = no smoothing.
    pub alpha: f64,
    /// Standard deviation of the simulated risk-sensor noise.
    pub sensor_noise_std: f64,
    /// Weight of the model-confidence deficit term: low softmax confidence
    /// raises estimated risk (the self-awareness signal).
    pub confidence_weight: f64,
    /// Seed for the sensor-noise stream.
    pub seed: u64,
    /// Risk level the estimate relaxes toward while the risk sensor is
    /// failed: fail-*safe*, so it is high (capacity gets restored, not
    /// shed, when the system is blind).
    pub fail_safe_risk: f64,
}

impl Default for RiskEstimatorConfig {
    fn default() -> Self {
        RiskEstimatorConfig {
            alpha: 0.35,
            sensor_noise_std: 0.04,
            confidence_weight: 0.15,
            seed: 0,
            fail_safe_risk: 0.85,
        }
    }
}

/// Online risk estimator (the MAPE-K Monitor).
///
/// Each tick it observes the (noisy) context-risk sensor and the
/// perception model's softmax confidence, and maintains an exponentially
/// weighted moving average:
///
/// `obs = clamp(true_risk + noise) + w·(1 − confidence)`
/// `est ← α·obs + (1−α)·est`
#[derive(Debug, Clone, PartialEq)]
pub struct RiskEstimator {
    config: RiskEstimatorConfig,
    rng: Prng,
    estimate: f64,
    initialized: bool,
    sensor_failed: bool,
    confidence_failed: bool,
}

impl RiskEstimator {
    /// Creates an estimator from a config.
    pub fn new(config: RiskEstimatorConfig) -> Self {
        RiskEstimator {
            rng: Prng::new(config.seed),
            config,
            estimate: 0.0,
            initialized: false,
            sensor_failed: false,
            confidence_failed: false,
        }
    }

    /// Marks the risk sensor as failed/recovered (failure injection).
    ///
    /// While failed, [`RiskEstimator::observe`] ignores the sensed risk
    /// and relaxes the estimate toward
    /// [`RiskEstimatorConfig::fail_safe_risk`], so downstream policies
    /// restore capacity rather than keep trusting a blind sensor.
    pub fn set_sensor_failed(&mut self, failed: bool) {
        self.sensor_failed = failed;
    }

    /// Whether the sensor is currently marked failed.
    pub fn sensor_failed(&self) -> bool {
        self.sensor_failed
    }

    /// Marks the model-confidence signal as dropped out/recovered —
    /// the symmetric fail-safe to [`RiskEstimator::set_sensor_failed`].
    ///
    /// While failed, [`RiskEstimator::observe`] ignores the reported
    /// confidence and charges the worst-case deficit
    /// (`confidence_weight × 1.0`), so a silent self-awareness channel
    /// pushes estimated risk *up* rather than being read as "all fine".
    pub fn set_confidence_failed(&mut self, failed: bool) {
        self.confidence_failed = failed;
    }

    /// Whether the confidence signal is currently marked failed.
    pub fn confidence_failed(&self) -> bool {
        self.confidence_failed
    }

    /// Observes one tick; returns the updated estimate in `[0, 1]`.
    pub fn observe(&mut self, true_risk: f64, model_confidence: f64) -> f64 {
        let obs = if self.sensor_failed {
            self.config.fail_safe_risk.clamp(0.0, 1.0)
        } else {
            let noise = self.config.sensor_noise_std * self.rng.next_normal() as f64;
            let sensed = (true_risk + noise).clamp(0.0, 1.0);
            let confidence = if self.confidence_failed {
                0.0
            } else {
                model_confidence.clamp(0.0, 1.0)
            };
            let deficit = self.config.confidence_weight * (1.0 - confidence);
            (sensed + deficit).clamp(0.0, 1.0)
        };
        if self.initialized {
            self.estimate = self.config.alpha * obs + (1.0 - self.config.alpha) * self.estimate;
        } else {
            self.estimate = obs;
            self.initialized = true;
        }
        self.estimate
    }

    /// The current estimate (0 before the first observation).
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Serializes the estimator's mutable state (EWMA, flags, and the
    /// noise stream position) as plain words for checkpointing. The
    /// config itself is not included — it is rebuilt from the runtime
    /// configuration on recovery.
    pub fn export_state(&self) -> Vec<u64> {
        let (state, spare) = self.rng.state_parts();
        let mut out = Vec::with_capacity(9);
        out.extend_from_slice(&state);
        out.push(u64::from(spare.is_some()));
        out.push(u64::from(spare.unwrap_or(0.0).to_bits()));
        out.push(self.estimate.to_bits());
        out.push(u64::from(self.initialized));
        out.push(u64::from(self.sensor_failed) | (u64::from(self.confidence_failed) << 1));
        out
    }

    /// Restores state exported by [`RiskEstimator::export_state`].
    /// Ignores malformed input (wrong length) and keeps current state.
    pub fn import_state(&mut self, words: &[u64]) {
        if words.len() != 9 {
            return;
        }
        let state = [words[0], words[1], words[2], words[3]];
        let spare = if words[4] != 0 {
            Some(f32::from_bits(words[5] as u32))
        } else {
            None
        };
        self.rng = Prng::from_parts(state, spare);
        self.estimate = f64::from_bits(words[6]);
        self.initialized = words[7] != 0;
        self.sensor_failed = words[8] & 1 != 0;
        self.confidence_failed = words[8] & 2 != 0;
    }
}

impl Default for RiskEstimator {
    fn default() -> Self {
        RiskEstimator::new(RiskEstimatorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noiseless(alpha: f64) -> RiskEstimator {
        RiskEstimator::new(RiskEstimatorConfig {
            alpha,
            sensor_noise_std: 0.0,
            confidence_weight: 0.0,
            seed: 0,
            ..Default::default()
        })
    }

    #[test]
    fn sensor_blackout_fails_safe() {
        let mut e = noiseless(0.5);
        // Settle at a calm estimate.
        for _ in 0..50 {
            e.observe(0.1, 1.0);
        }
        assert!(e.estimate() < 0.15);
        assert!(!e.sensor_failed());
        // Sensor dies: the estimate must climb toward the fail-safe risk
        // even though true risk stays low.
        e.set_sensor_failed(true);
        assert!(e.sensor_failed());
        for _ in 0..50 {
            e.observe(0.1, 1.0);
        }
        assert!(
            e.estimate() > 0.8,
            "blind estimator must assume danger: {}",
            e.estimate()
        );
        // Recovery: estimate relaxes back down.
        e.set_sensor_failed(false);
        for _ in 0..50 {
            e.observe(0.1, 1.0);
        }
        assert!(e.estimate() < 0.15);
    }

    #[test]
    fn first_observation_initializes() {
        let mut e = noiseless(0.1);
        assert_eq!(e.estimate(), 0.0);
        let est = e.observe(0.8, 1.0);
        assert!((est - 0.8).abs() < 1e-12, "no lag on first sample");
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = noiseless(0.3);
        let mut est = 0.0;
        for _ in 0..100 {
            est = e.observe(0.5, 1.0);
        }
        assert!((est - 0.5).abs() < 1e-6);
    }

    #[test]
    fn smoothing_lags_step_changes() {
        let mut e = noiseless(0.2);
        e.observe(0.0, 1.0);
        let after_one = e.observe(1.0, 1.0);
        assert!(after_one < 0.5, "α=0.2 must lag a 0→1 step: {after_one}");
        assert!(after_one > 0.1);
    }

    #[test]
    fn alpha_one_tracks_instantly() {
        let mut e = noiseless(1.0);
        e.observe(0.1, 1.0);
        assert_eq!(e.observe(0.9, 1.0), 0.9);
    }

    #[test]
    fn low_confidence_raises_estimate() {
        let mut confident = RiskEstimator::new(RiskEstimatorConfig {
            alpha: 1.0,
            sensor_noise_std: 0.0,
            confidence_weight: 0.2,
            seed: 0,
            ..Default::default()
        });
        let mut shaky = confident.clone();
        let a = confident.observe(0.3, 1.0);
        let b = shaky.observe(0.3, 0.4);
        assert!(b > a, "confidence deficit must add risk: {a} vs {b}");
        assert!((b - (0.3 + 0.2 * 0.6)).abs() < 1e-9);
    }

    #[test]
    fn estimate_stays_in_unit_interval_under_noise() {
        let mut e = RiskEstimator::new(RiskEstimatorConfig {
            alpha: 0.8,
            sensor_noise_std: 0.5,
            confidence_weight: 0.3,
            seed: 3,
            ..Default::default()
        });
        for i in 0..500 {
            let est = e.observe((i % 10) as f64 / 10.0, 0.5);
            assert!((0.0..=1.0).contains(&est));
        }
    }

    #[test]
    fn confidence_dropout_charges_worst_case_deficit() {
        let cfg = RiskEstimatorConfig {
            alpha: 1.0,
            sensor_noise_std: 0.0,
            confidence_weight: 0.2,
            seed: 0,
            ..Default::default()
        };
        let mut healthy = RiskEstimator::new(cfg);
        let mut dropped = RiskEstimator::new(cfg);
        dropped.set_confidence_failed(true);
        assert!(dropped.confidence_failed());
        // Even while the model *reports* perfect confidence, a dropped
        // signal must be priced as zero confidence.
        let a = healthy.observe(0.3, 1.0);
        let b = dropped.observe(0.3, 1.0);
        assert!((a - 0.3).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9, "worst-case deficit: {b}");
        // Recovery restores the normal fusion.
        dropped.set_confidence_failed(false);
        assert!((dropped.observe(0.3, 1.0) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn state_round_trip_resumes_estimator_bit_exactly() {
        let cfg = RiskEstimatorConfig {
            sensor_noise_std: 0.1,
            confidence_weight: 0.2,
            ..Default::default()
        };
        let mut a = RiskEstimator::new(cfg);
        for i in 0..37 {
            a.observe((i % 7) as f64 / 7.0, 0.8);
        }
        a.set_sensor_failed(true);
        let words = a.export_state();
        let mut b = RiskEstimator::new(cfg);
        b.import_state(&words);
        assert_eq!(a, b);
        for i in 0..25 {
            let x = a.observe((i % 5) as f64 / 5.0, 0.6);
            let y = b.observe((i % 5) as f64 / 5.0, 0.6);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Malformed input is ignored.
        let before = b.clone();
        b.import_state(&[1, 2, 3]);
        assert_eq!(b, before);
    }

    #[test]
    fn noise_is_deterministic_by_seed() {
        let cfg = RiskEstimatorConfig {
            sensor_noise_std: 0.1,
            ..Default::default()
        };
        let mut a = RiskEstimator::new(cfg);
        let mut b = RiskEstimator::new(cfg);
        for _ in 0..20 {
            assert_eq!(a.observe(0.4, 0.9), b.observe(0.4, 0.9));
        }
    }
}
