//! The M, A, P, and E of the MAPE-K loop as swappable trait objects.
//!
//! Each stage is a trait whose methods receive `&mut Knowledge`, the
//! [`Plant`], the [`RestoreChain`], and the trace — never another
//! stage. The default implementations reproduce the monolithic
//! pre-refactor `RuntimeManager::step()` bit for bit (the golden-output
//! test gates this); alternative estimators, policies, and actuators
//! can be installed per fleet member via the `RuntimeManager::set_*`
//! hooks.

use crate::envelope::SafetyEnvelope;
use crate::faults::OperatingState;
use crate::knowledge::{Knowledge, PendingRestore};
use crate::monitor::RiskEstimator;
use crate::plant::Plant;
use crate::policy::Policy;
use crate::restore::{ChainReport, RestoreChain};
use crate::trace::{StageId, TickTrace, TraceEventKind};
use crate::Result;
use reprune_scenario::{OddSpec, Tick};

/// Ladder cap applied while [`OperatingState::Degraded`]: no pruning
/// deeper than one level until the system is verified clean.
pub const DEGRADED_MAX_LEVEL: usize = 1;

/// What the Analyze stage concluded about the current tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Analysis {
    /// Fused risk estimate from the Monitor.
    pub estimated_risk: f64,
    /// Whether the tick is inside the Operational Design Domain.
    pub inside_odd: bool,
    /// Deepest ladder level the safety envelope permits at the true
    /// risk.
    pub max_allowed_level: usize,
}

/// What the Plan stage commanded for the current tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Directive {
    /// Level the policy wanted before degradation caps.
    pub planned: usize,
    /// Level the Execute stage must drive toward.
    pub target: usize,
}

/// Monitor stage: sensor/confidence channel health and the fused risk
/// estimate.
pub trait Monitor: Send {
    /// Propagates fault-window and manual channel failures into the
    /// estimator and pins the system at least at Degraded while any
    /// self-announcing window is active (armed defenses only).
    fn observe_health(
        &mut self,
        k: &mut Knowledge,
        plant: &Plant,
        tick: &Tick,
        trace: &mut TickTrace,
    );

    /// Fuses the risk sensor with the last inference confidence into
    /// the per-tick risk estimate. Called exactly once per tick.
    fn estimate(&mut self, k: &Knowledge, tick: &Tick) -> f64;

    /// Serializes any stage-private mutable state as plain words so a
    /// crash-recovery checkpoint can resume the stage bit-exactly.
    /// Stateless monitors return an empty vector (the default).
    fn export_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state exported by [`Monitor::export_state`]. Malformed
    /// input is ignored.
    fn import_state(&mut self, _words: &[u64]) {}
}

/// Analyze stage: integrity verdicts and tick assessment.
pub trait Analyze: Send {
    /// Runs the armed integrity checks (background scrub, sealed
    /// checksum) and escalates through the restore chain on a verdict.
    ///
    /// # Errors
    ///
    /// Propagates non-recoverable restore errors.
    fn verify_integrity(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Result<()>;

    /// Assesses the tick: ODD membership and the envelope's level cap.
    fn assess(&mut self, k: &Knowledge, tick: &Tick, estimated_risk: f64) -> Analysis;
}

/// Plan stage: level selection under the degradation caps.
pub trait Plan: Send {
    /// Chooses the planned and target levels for this tick.
    fn plan(
        &mut self,
        k: &Knowledge,
        analysis: &Analysis,
        current_level: usize,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Directive;

    /// Name of the governing policy (reported on `RunResult`).
    fn policy_name(&self) -> String;

    /// Serializes any stage-private mutable state as plain words so a
    /// crash-recovery checkpoint can resume the stage bit-exactly.
    /// Stateless planners return an empty vector (the default).
    fn export_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state exported by [`Plan::export_state`]. Malformed
    /// input is ignored.
    fn import_state(&mut self, _words: &[u64]) {}
}

/// Execute stage: pruner transitions, the fallback chain, and reload
/// scheduling.
pub trait Execute: Send {
    /// Completes a due storage reload and retries a wanted one under
    /// backoff.
    ///
    /// # Errors
    ///
    /// Propagates non-recoverable restore errors.
    fn service_reload(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Result<()>;

    /// Completes a due multi-tick ladder restore through the fallback
    /// chain.
    ///
    /// # Errors
    ///
    /// Propagates non-recoverable restore errors.
    fn service_restore(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Result<()>;

    /// Drives the pruner toward the directive's target: in-place deeper
    /// pruning, synchronous restore through the chain, or scheduling a
    /// multi-tick restore (retargeting it on a deeper emergency).
    ///
    /// # Errors
    ///
    /// Propagates non-recoverable pruning/restore errors.
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        directive: &Directive,
        tick: &Tick,
        dt: f64,
        trace: &mut TickTrace,
    ) -> Result<()>;
}

/// Default Monitor: the EWMA risk-fusion estimator plus window-health
/// propagation.
pub struct DefaultMonitor {
    estimator: RiskEstimator,
    armed: bool,
}

impl DefaultMonitor {
    /// Wraps a risk estimator; `armed` reflects whether any defense tier
    /// is active (unarmed monitors never escalate the state machine).
    pub fn new(estimator: RiskEstimator, armed: bool) -> Self {
        DefaultMonitor { estimator, armed }
    }
}

impl Monitor for DefaultMonitor {
    fn observe_health(
        &mut self,
        k: &mut Knowledge,
        plant: &Plant,
        tick: &Tick,
        trace: &mut TickTrace,
    ) {
        // Monitor channels follow manual overrides OR scheduled windows.
        self.estimator
            .set_sensor_failed(k.manual_sensor_failed || tick.t < k.sensor_fault_until);
        self.estimator
            .set_confidence_failed(k.manual_confidence_failed || tick.t < k.confidence_fault_until);
        // An armed health monitor pins the system at least at Degraded
        // while any fault window is active.
        if self.armed && k.windows_active(tick.t, &plant.storage) {
            k.enter_state(OperatingState::Degraded, tick.t, trace);
        }
    }

    fn estimate(&mut self, k: &Knowledge, tick: &Tick) -> f64 {
        self.estimator.observe(tick.risk, k.last_confidence)
    }

    fn export_state(&self) -> Vec<u64> {
        // `armed` is config-derived and rebuilt on recovery; only the
        // estimator carries run-dependent state.
        self.estimator.export_state()
    }

    fn import_state(&mut self, words: &[u64]) {
        self.estimator.import_state(words);
    }
}

/// Default Analyze: scrub + sealed-checksum defense and envelope/ODD
/// assessment.
pub struct DefaultAnalyze {
    envelope: SafetyEnvelope,
    odd: OddSpec,
}

impl DefaultAnalyze {
    /// Builds the analyzer from the configured envelope and ODD.
    pub fn new(envelope: SafetyEnvelope, odd: OddSpec) -> Self {
        DefaultAnalyze { envelope, odd }
    }
}

impl Analyze for DefaultAnalyze {
    fn verify_integrity(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Result<()> {
        crate::defense::verify_integrity(k, plant, chain, tick, trace)
    }

    fn assess(&mut self, _k: &Knowledge, tick: &Tick, estimated_risk: f64) -> Analysis {
        Analysis {
            estimated_risk,
            inside_odd: self.odd.contains(tick),
            max_allowed_level: self.envelope.max_level(tick.risk),
        }
    }
}

/// Default Plan: the configured adaptation policy, capped by the
/// degradation state machine and forced to full capacity outside the
/// ODD.
pub struct DefaultPlanner {
    policy: Policy,
    envelope: SafetyEnvelope,
}

impl DefaultPlanner {
    /// Builds the planner from the configured policy and envelope.
    pub fn new(policy: Policy, envelope: SafetyEnvelope) -> Self {
        DefaultPlanner { policy, envelope }
    }
}

impl Plan for DefaultPlanner {
    fn plan(
        &mut self,
        k: &Knowledge,
        analysis: &Analysis,
        current_level: usize,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Directive {
        let planned = if analysis.inside_odd {
            let policy_level = self.policy.decide(
                &self.envelope,
                analysis.estimated_risk,
                tick.risk,
                current_level,
            );
            // A fleet arbiter may ask for deeper pruning than the local
            // policy chose (its budget share only covers `cap.level`),
            // but never deeper than the envelope allows at this tick's
            // risk — the budget yields to safety, not the other way.
            match k.external_cap {
                Some(cap) => policy_level.max(cap.level.min(analysis.max_allowed_level)),
                None => policy_level,
            }
        } else {
            // Outside the ODD the safety case does not cover degraded
            // perception: minimal-risk response is full capacity.
            0
        };
        let target = match k.op_state {
            OperatingState::Normal => planned,
            OperatingState::Degraded => planned.min(DEGRADED_MAX_LEVEL),
            OperatingState::MinimalRisk => 0,
        };
        if target != current_level {
            trace.record(
                tick.t,
                StageId::Plan,
                TraceEventKind::DecisionTaken {
                    current: current_level,
                    planned,
                    target,
                },
            );
        }
        Directive { planned, target }
    }

    fn policy_name(&self) -> String {
        self.policy.name()
    }

    fn export_state(&self) -> Vec<u64> {
        // The only mutable policy state is the adaptive dwell streak.
        match &self.policy {
            Policy::ReversibleAdaptive { raise_streak, .. } => vec![*raise_streak as u64],
            _ => Vec::new(),
        }
    }

    fn import_state(&mut self, words: &[u64]) {
        if let (Policy::ReversibleAdaptive { raise_streak, .. }, Some(w)) =
            (&mut self.policy, words.first())
        {
            *raise_streak = *w as usize;
        }
    }
}

/// Default Execute: the restore fallback chain actuator.
pub struct ChainExecutor;

impl ChainExecutor {
    /// Climbs toward `target` one ladder level at a time, stopping when
    /// the next slice would push the time spent this tick past
    /// `budget`. The first slice always runs — a single oversized delta
    /// must not stall the climb forever — and a slice that fails to
    /// lower the level (the fallback chain parked the climb on a
    /// detected corruption) ends the loop for this tick. Each completed
    /// slice is charged exactly like a synchronous restore of that
    /// slice and leaves a `restore-slice` trace event, so the trace
    /// stays balanced against the counters.
    fn apply_amortized(
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        target: usize,
        budget: f64,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Result<()> {
        let mut spent = 0.0f64;
        loop {
            let level = plant.pruner.current_level();
            if level <= target {
                break;
            }
            let entries = plant.entries_between(level - 1, level);
            let latency = chain.restore_latency(entries);
            if spent > 0.0 && spent + latency.0 > budget {
                break;
            }
            k.absorb_deferred(ChainReport {
                latency,
                energy: chain.restore_energy(entries),
                detected: false,
                repaired: false,
            });
            k.tick.sync_latency_s += latency.0;
            spent += latency.0;
            let rep = chain.set_level_chain(k, plant, level - 1, tick.t, trace)?;
            k.absorb(rep);
            let now = plant.pruner.current_level();
            if now >= level {
                break;
            }
            trace.record(
                tick.t,
                StageId::Execute,
                TraceEventKind::RestoreSlice { level: now, target },
            );
        }
        Ok(())
    }
}

impl Execute for ChainExecutor {
    fn service_reload(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Result<()> {
        if let Some(ready) = k.pending_reload {
            if tick.t + 1e-9 >= ready {
                k.pending_reload = None;
                chain.complete_storage_reload(k, plant, tick.t, trace)?;
                k.tick.repaired = true;
            }
        }
        if k.reload_wanted && k.pending_reload.is_none() && tick.t >= k.next_reload_attempt_s {
            let mut rep = ChainReport::default();
            chain.try_storage_reload(k, plant, tick.t, &mut rep, trace);
            k.absorb_deferred(rep);
        }
        Ok(())
    }

    fn service_restore(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        tick: &Tick,
        trace: &mut TickTrace,
    ) -> Result<()> {
        if k.pending_reload.is_none() {
            if let Some(p) = &k.pending {
                if tick.t + 1e-9 >= p.ready_at {
                    let target = p.target;
                    k.pending = None;
                    let rep = chain.set_level_chain(k, plant, target, tick.t, trace)?;
                    k.absorb(rep);
                    trace.record(
                        tick.t,
                        StageId::Execute,
                        TraceEventKind::RestoreCompleted {
                            level: plant.pruner.current_level(),
                        },
                    );
                }
            }
        }
        Ok(())
    }

    fn apply(
        &mut self,
        k: &mut Knowledge,
        plant: &mut Plant,
        chain: &RestoreChain,
        directive: &Directive,
        tick: &Tick,
        dt: f64,
        trace: &mut TickTrace,
    ) -> Result<()> {
        let target = directive.target;
        if k.pending_reload.is_some() {
            // Nothing: the network serves as-is until the image arrives.
        } else if k.pending.is_none() && target != plant.pruner.current_level() {
            if target > plant.pruner.current_level() {
                // Pruning deeper: in-place mask application, sub-tick cost.
                let before = plant.pruner.log_entries();
                let tr = plant.pruner.set_level(&mut plant.net, target)?;
                if tr.from != tr.to {
                    k.transitions += 1;
                }
                k.reseal(&plant.net);
                let pushed = plant.pruner.log_entries() - before;
                let lat = chain
                    .soc
                    .delta_restore_latency((pushed as f64 * chain.scale_factor) as usize);
                k.absorb(ChainReport {
                    latency: lat,
                    energy: chain.restore_energy(pushed),
                    detected: false,
                    repaired: false,
                });
            } else if let Some(budget) = k.restore_budget_s.filter(|_| chain.supports_amortized())
            {
                // Amortized restore: whole one-level slices inside the
                // per-tick budget, continuing next tick if needed.
                Self::apply_amortized(k, plant, chain, target, budget, tick, trace)?;
            } else {
                // Restoring capacity: charge the configured mechanism.
                let entries = plant.entries_between(target, plant.pruner.current_level());
                let latency = chain.restore_latency(entries);
                k.absorb_deferred(ChainReport {
                    latency,
                    energy: chain.restore_energy(entries),
                    detected: false,
                    repaired: false,
                });
                if latency.0 <= dt {
                    k.tick.sync_latency_s += latency.0;
                    let rep = chain.set_level_chain(k, plant, target, tick.t, trace)?;
                    k.absorb(rep);
                } else {
                    k.pending = Some(PendingRestore {
                        target,
                        ready_at: tick.t + latency.0,
                    });
                    trace.record(
                        tick.t,
                        StageId::Execute,
                        TraceEventKind::RestoreScheduled {
                            target,
                            ready_at: tick.t + latency.0,
                        },
                    );
                }
            }
        } else if let Some(p) = &mut k.pending {
            // A deeper emergency while already restoring: retarget lower.
            if target < p.target {
                p.target = target;
                trace.record(
                    tick.t,
                    StageId::Execute,
                    TraceEventKind::RestoreRetargeted { target },
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use reprune_scenario::{SegmentKind, Weather};

    fn tick(t: f64, risk: f64) -> Tick {
        Tick {
            t,
            segment: SegmentKind::Highway,
            weather: Weather::Clear,
            risk,
            active_events: 0,
        }
    }

    fn knowledge() -> Knowledge {
        Knowledge::new(Vec::new(), reprune_platform::Bytes(1), 0)
    }

    fn planner() -> DefaultPlanner {
        DefaultPlanner::new(
            Policy::Oracle,
            SafetyEnvelope::new(vec![0.6, 0.4, 0.2]).unwrap(),
        )
    }

    #[test]
    fn planner_forces_full_capacity_outside_odd() {
        let mut p = planner();
        let k = knowledge();
        let mut tr = TickTrace::new(8);
        let analysis = Analysis {
            estimated_risk: 0.05,
            inside_odd: false,
            max_allowed_level: 3,
        };
        let d = p.plan(&k, &analysis, 3, &tick(0.0, 0.05), &mut tr);
        assert_eq!(d.planned, 0, "outside the ODD the plan is full capacity");
        assert_eq!(d.target, 0);
    }

    #[test]
    fn planner_caps_target_by_degradation_state() {
        let mut p = planner();
        let mut k = knowledge();
        let mut tr = TickTrace::new(8);
        let analysis = Analysis {
            estimated_risk: 0.05,
            inside_odd: true,
            max_allowed_level: 3,
        };
        // Oracle at risk 0.05 plans the deepest level (3).
        k.op_state = OperatingState::Degraded;
        let d = p.plan(&k, &analysis, 0, &tick(0.0, 0.05), &mut tr);
        assert_eq!(d.planned, 3);
        assert_eq!(d.target, DEGRADED_MAX_LEVEL, "degraded caps the target");
        k.op_state = OperatingState::MinimalRisk;
        let d = p.plan(&k, &analysis, 1, &tick(0.0, 0.05), &mut tr);
        assert_eq!(d.target, 0, "minimal risk forces full capacity");
    }

    #[test]
    fn external_cap_floors_the_plan_inside_the_odd_only() {
        use crate::knowledge::ExternalCap;
        let mut p = planner();
        let mut k = knowledge();
        let mut tr = TickTrace::new(8);
        // Oracle at risk 0.5 plans level 1; the arbiter asks for ≥ 2.
        let analysis = Analysis {
            estimated_risk: 0.5,
            inside_odd: true,
            max_allowed_level: 3,
        };
        k.external_cap = Some(ExternalCap { level: 2 });
        let d = p.plan(&k, &analysis, 0, &tick(0.0, 0.5), &mut tr);
        assert_eq!(d.planned, 2, "budget floor raises the planned level");
        // The cap is clamped to the envelope's allowance for the tick.
        let risky = Analysis {
            estimated_risk: 0.9,
            inside_odd: true,
            max_allowed_level: 0,
        };
        let d = p.plan(&k, &risky, 0, &tick(0.1, 0.9), &mut tr);
        assert_eq!(d.planned, 0, "envelope beats the budget cap");
        // Outside the ODD the cap is ignored entirely.
        let outside = Analysis {
            estimated_risk: 0.1,
            inside_odd: false,
            max_allowed_level: 3,
        };
        let d = p.plan(&k, &outside, 2, &tick(0.2, 0.1), &mut tr);
        assert_eq!(d.planned, 0, "ODD exit overrides the budget cap");
        // A cap below the policy's own choice changes nothing.
        k.external_cap = Some(ExternalCap { level: 0 });
        let deep = Analysis {
            estimated_risk: 0.05,
            inside_odd: true,
            max_allowed_level: 3,
        };
        let d = p.plan(&k, &deep, 3, &tick(0.3, 0.05), &mut tr);
        assert_eq!(d.planned, 3, "floor below the plan is inert");
    }

    #[test]
    fn planner_traces_only_real_decisions() {
        let mut p = planner();
        let k = knowledge();
        let mut tr = TickTrace::new(8);
        let analysis = Analysis {
            estimated_risk: 0.9,
            inside_odd: true,
            max_allowed_level: 0,
        };
        // Already at the target level: no decision event.
        p.plan(&k, &analysis, 0, &tick(0.0, 0.9), &mut tr);
        assert!(tr.is_empty());
        // A change is commanded: one decision event.
        p.plan(&k, &analysis, 2, &tick(0.1, 0.9), &mut tr);
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.events().next().unwrap().kind.name(), "decision-taken");
    }
}
