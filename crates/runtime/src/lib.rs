//! MAPE-K runtime for reversible neural-network pruning.
//!
//! This crate closes the loop the paper's title promises: a self-aware
//! runtime that prunes the perception network when the driving context is
//! benign and snaps it back to full capacity — through the reversal log —
//! the moment risk rises.
//!
//! The MAPE-K stages are explicit, trait-backed, and swappable
//! (DESIGN.md §10):
//!
//! * **Monitor** — [`stages::Monitor`] (default:
//!   [`monitor::RiskEstimator`] fusing a noisy context-risk sensor with
//!   the model's own confidence signal, plus fault-window health),
//! * **Analyze** — [`stages::Analyze`] (default: the armed integrity
//!   defense in [`defense`], plus [`envelope::SafetyEnvelope`] turning
//!   estimated risk into the maximum ladder level safety permits),
//! * **Plan** — [`stages::Plan`] (default: [`policy::Policy`] choosing
//!   the target level with hysteresis and dwell, capped by the
//!   degradation state machine),
//! * **Execute** — [`stages::Execute`] (default: the restore fallback
//!   chain in [`restore`] driving the reversible pruner),
//! * **Knowledge** — [`knowledge::Knowledge`] owns *all* cross-stage
//!   state; per-level costs are profiled once at attach time
//!   ([`manager::LevelKnowledge`]). The managed element itself lives in
//!   [`plant::Plant`].
//!
//! [`manager::RuntimeManager::run`] composes the stages in a fixed
//! order, drives a full [`reprune_scenario::Scenario`], and returns
//! per-tick records, the violation / energy / recovery aggregates every
//! end-to-end experiment reports, and a bounded structured
//! [`trace::TickTrace`] of typed stage events (dumpable as JSON-lines
//! from the bench bins).

#![deny(missing_docs)]

mod error;

pub mod defense;
pub mod envelope;
pub mod executor;
pub mod faults;
pub mod fleet;
pub mod knowledge;
pub mod manager;
pub mod monitor;
pub mod plant;
pub(crate) mod pool;
pub mod policy;
pub mod record;
pub mod restore;
pub mod spill;
pub mod stages;
pub mod trace;

pub use envelope::SafetyEnvelope;
pub use executor::{
    FleetRunResult, FleetRuntime, FleetStorageBytes, FleetTickRecord, FleetTraceEvent, MemberTick,
};
pub use faults::{storm_events, FaultDefense, FaultPlan, OperatingState, StormConfig};
pub use fleet::{plan_budget, plan_budget_prevalidated, BudgetPlan, FleetMember};
pub use error::RuntimeError;
pub use knowledge::{ExternalCap, Knowledge, LevelKnowledge, TickBudget};
pub use manager::{weather_to_context, DeploymentScale, RuntimeManager, RuntimeManagerConfig};
pub use monitor::RiskEstimator;
pub use plant::{Perception, Plant};
pub use policy::Policy;
pub use record::{RunResult, TickRecord};
pub use restore::{ChainReport, RestoreChain, RestoreMechanism};
pub use spill::{RecoveryReport, SpillConfig, SpillState, SpillStats};
pub use stages::{Analysis, Analyze, Directive, Execute, Monitor, Plan};
pub use trace::{
    ChainHop, DetectionSource, StageId, TickTrace, TraceEvent, TraceEventKind,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
