//! MAPE-K runtime for reversible neural-network pruning.
//!
//! This crate closes the loop the paper's title promises: a self-aware
//! runtime that prunes the perception network when the driving context is
//! benign and snaps it back to full capacity — through the reversal log —
//! the moment risk rises.
//!
//! The classic MAPE-K stages map onto the modules:
//!
//! * **Monitor** — [`monitor::RiskEstimator`] fuses a noisy context-risk
//!   sensor with the model's own confidence signal,
//! * **Analyze** — [`envelope::SafetyEnvelope`] turns estimated risk into
//!   the maximum ladder level safety permits,
//! * **Plan** — [`policy::Policy`] chooses the target level (with
//!   hysteresis and dwell so the system does not oscillate),
//! * **Execute** — [`manager::RuntimeManager`] applies the transition via
//!   the chosen restore mechanism and charges its platform cost,
//! * **Knowledge** — per-level inference costs and restore prices are
//!   profiled once at attach time ([`manager::LevelKnowledge`]).
//!
//! [`manager::RuntimeManager::run`] drives a full
//! [`reprune_scenario::Scenario`] and returns per-tick records plus the
//! violation / energy / recovery aggregates every end-to-end experiment
//! reports.

#![deny(missing_docs)]

mod error;

pub mod envelope;
pub mod faults;
pub mod fleet;
pub mod manager;
pub mod monitor;
pub mod policy;
pub mod record;

pub use envelope::SafetyEnvelope;
pub use faults::{storm_events, FaultDefense, FaultPlan, OperatingState, StormConfig};
pub use fleet::{plan_budget, BudgetPlan, FleetMember};
pub use error::RuntimeError;
pub use manager::{DeploymentScale, RestoreMechanism, RuntimeManager, RuntimeManagerConfig};
pub use monitor::RiskEstimator;
pub use policy::Policy;
pub use record::{RunResult, TickRecord};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
