//! Per-tick records and whole-run aggregates.

use crate::faults::OperatingState;
use crate::trace::TraceEvent;
use reprune_platform::{Joules, Seconds};
use reprune_scenario::{SegmentKind, Weather};
use serde::{Deserialize, Serialize};

/// Everything the runtime observed and decided in one tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickRecord {
    /// Tick time (seconds from scenario start).
    pub t: f64,
    /// Ground-truth context risk.
    pub true_risk: f64,
    /// The Monitor's fused risk estimate.
    pub estimated_risk: f64,
    /// Ladder level in effect during this tick.
    pub level: usize,
    /// Nominal sparsity of that level.
    pub sparsity: f64,
    /// Maximum level the safety envelope permitted at the true risk.
    pub max_allowed_level: usize,
    /// Whether this tick was outside the Operational Design Domain.
    pub odd_exit: bool,
    /// Whether this tick violated the safety envelope (including running
    /// pruned outside the ODD).
    pub violation: bool,
    /// Whether the perception prediction was correct.
    pub correct: bool,
    /// Softmax confidence of the prediction.
    pub confidence: f64,
    /// Inference energy charged this tick.
    pub inference_energy: Joules,
    /// Inference latency this tick.
    pub inference_latency: Seconds,
    /// Energy spent on a level transition this tick (0 if none).
    pub transition_energy: Joules,
    /// Latency of the level transition started this tick (0 if none).
    pub transition_latency: Seconds,
    /// Road segment at this tick.
    pub segment: SegmentKind,
    /// Weather at this tick.
    pub weather: Weather,
    /// Rung of the degradation state machine during this tick.
    pub op_state: OperatingState,
    /// Effective fault injections that landed this tick.
    pub faults_injected: u32,
    /// Whether the armed defense detected a fault this tick.
    pub fault_detected: bool,
    /// Whether a repair or fallback restore completed this tick.
    pub fault_repaired: bool,
    /// Ground truth: this inference ran on weights differing from the
    /// never-faulted twin (invisible to the runtime's own defense).
    pub corrupt_inference: bool,
    /// Inference plus synchronous repair work overran the control period.
    pub deadline_miss: bool,
}

/// Aggregated result of driving one scenario under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Policy name.
    pub policy: String,
    /// Restore-mechanism name.
    pub mechanism: String,
    /// Fault-defense tier name.
    pub defense: String,
    /// Per-tick records.
    pub records: Vec<TickRecord>,
    /// Total energy (inference + transitions).
    pub total_energy: Joules,
    /// Energy the dense (never-pruned) model would have used.
    pub dense_energy: Joules,
    /// Safety-envelope violation tick count.
    pub violations: usize,
    /// Completed recovery episodes (demand-spike → compliant), seconds.
    pub recovery_latencies: Vec<f64>,
    /// Number of ladder transitions executed.
    pub transitions: usize,
    /// Effective fault injections over the run.
    pub faults_injected: usize,
    /// Faults the armed defense noticed.
    pub faults_detected: usize,
    /// Faults resolved by repair or a successful fallback restore.
    pub faults_repaired: usize,
    /// Completed fault episodes (state machine leaves Normal → returns
    /// to Normal), seconds — the mean is the MTTR headline.
    pub fault_recovery_latencies: Vec<f64>,
    /// Structured stage-event trace of the run (oldest events first;
    /// bounded by the configured ring capacity).
    pub trace: Vec<TraceEvent>,
    /// Trace events evicted because the ring buffer was full (0 means
    /// the trace is complete).
    pub trace_dropped: u64,
}

impl RunResult {
    /// Fraction of energy saved relative to the dense baseline.
    pub fn energy_saved_fraction(&self) -> f64 {
        if self.dense_energy.0 <= 0.0 {
            0.0
        } else {
            (1.0 - self.total_energy.0 / self.dense_energy.0).max(-1.0)
        }
    }

    /// Fraction of ticks in violation.
    pub fn violation_fraction(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.violations as f64 / self.records.len() as f64
        }
    }

    /// Mean perception accuracy over the run.
    pub fn mean_accuracy(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().filter(|r| r.correct).count() as f64
                / self.records.len() as f64
        }
    }

    /// Perception accuracy over critical ticks only (true risk at or above
    /// `threshold`) — the number safety cases care about. `None` if the
    /// run had no critical ticks.
    pub fn critical_accuracy(&self, threshold: f64) -> Option<f64> {
        let critical: Vec<_> = self
            .records
            .iter()
            .filter(|r| r.true_risk >= threshold)
            .collect();
        if critical.is_empty() {
            None
        } else {
            Some(
                critical.iter().filter(|r| r.correct).count() as f64
                    / critical.len() as f64,
            )
        }
    }

    /// Mean of the completed recovery latencies, or `None`.
    pub fn mean_recovery_latency(&self) -> Option<f64> {
        if self.recovery_latencies.is_empty() {
            None
        } else {
            Some(self.recovery_latencies.iter().sum::<f64>() / self.recovery_latencies.len() as f64)
        }
    }

    /// `q`-quantile (0..=1) of recovery latencies, or `None`.
    pub fn recovery_latency_quantile(&self, q: f64) -> Option<f64> {
        if self.recovery_latencies.is_empty() {
            return None;
        }
        let mut v = self.recovery_latencies.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Mean nominal sparsity over the run (how pruned the model was on
    /// average — the energy story in one number).
    pub fn mean_sparsity(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().map(|r| r.sparsity).sum::<f64>() / self.records.len() as f64
        }
    }

    /// Number of ticks spent outside the Operational Design Domain.
    pub fn odd_exit_ticks(&self) -> usize {
        self.records.iter().filter(|r| r.odd_exit).count()
    }

    /// Number of ticks whose inference latency exceeded `deadline`
    /// seconds — the real-time view of the same data (a perception stack
    /// must finish within its control period).
    pub fn deadline_misses(&self, deadline: f64) -> usize {
        self.records
            .iter()
            .filter(|r| r.inference_latency.0 > deadline)
            .count()
    }

    /// Fraction of effective fault injections the defense detected, or
    /// `None` when no fault was injected.
    pub fn detection_rate(&self) -> Option<f64> {
        if self.faults_injected == 0 {
            None
        } else {
            Some(self.faults_detected as f64 / self.faults_injected as f64)
        }
    }

    /// Mean time to recover: mean seconds from leaving `Normal` to
    /// returning to it, over completed fault episodes.
    pub fn mean_time_to_recover(&self) -> Option<f64> {
        if self.fault_recovery_latencies.is_empty() {
            None
        } else {
            Some(
                self.fault_recovery_latencies.iter().sum::<f64>()
                    / self.fault_recovery_latencies.len() as f64,
            )
        }
    }

    /// Ticks whose inference ran on ground-truth-corrupted weights.
    pub fn corrupt_inference_ticks(&self) -> usize {
        self.records.iter().filter(|r| r.corrupt_inference).count()
    }

    /// Corrupt-inference ticks served while the runtime believed it was
    /// `Normal` — the silent-corruption number the paper's safety
    /// argument hinges on.
    pub fn silent_corruption_ticks(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.corrupt_inference && r.op_state == OperatingState::Normal)
            .count()
    }

    /// Ticks spent in [`OperatingState::Degraded`].
    pub fn degraded_ticks(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.op_state == OperatingState::Degraded)
            .count()
    }

    /// Ticks spent in [`OperatingState::MinimalRisk`].
    pub fn minimal_risk_ticks(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.op_state == OperatingState::MinimalRisk)
            .count()
    }

    /// Ticks whose inference + synchronous repair work overran the
    /// control period (as flagged per tick by the runtime).
    pub fn deadline_miss_ticks(&self) -> usize {
        self.records.iter().filter(|r| r.deadline_miss).count()
    }

    /// Serializes the per-tick records as CSV (with header), for external
    /// plotting of the timeline figures.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "t,true_risk,estimated_risk,level,sparsity,max_allowed_level,odd_exit,violation,\
             correct,confidence,inference_energy_j,inference_latency_s,\
             transition_energy_j,transition_latency_s,segment,weather,\
             op_state,faults_injected,fault_detected,fault_repaired,\
             corrupt_inference,deadline_miss\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{:.3},{:.4},{:.4},{},{:.3},{},{},{},{},{:.4},{:.6e},{:.6e},{:.6e},{:.6e},{},{},{},{},{},{},{},{}\n",
                r.t,
                r.true_risk,
                r.estimated_risk,
                r.level,
                r.sparsity,
                r.max_allowed_level,
                r.odd_exit as u8,
                r.violation as u8,
                r.correct as u8,
                r.confidence,
                r.inference_energy.0,
                r.inference_latency.0,
                r.transition_energy.0,
                r.transition_latency.0,
                r.segment,
                r.weather,
                r.op_state,
                r.faults_injected,
                r.fault_detected as u8,
                r.fault_repaired as u8,
                r.corrupt_inference as u8,
                r.deadline_miss as u8,
            ));
        }
        out
    }

    /// Number of trace events whose kind name equals `name` (e.g.
    /// `"fault-detected"`).
    pub fn trace_event_count(&self, name: &str) -> usize {
        self.trace.iter().filter(|e| e.kind.name() == name).count()
    }

    /// Renders the whole trace as JSON-lines (one event per line).
    pub fn trace_json_lines(&self) -> String {
        let mut out = String::new();
        for ev in &self.trace {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Histogram of ticks per ladder level.
    pub fn level_histogram(&self) -> Vec<(usize, usize)> {
        let max = self.records.iter().map(|r| r.level).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for r in &self.records {
            hist[r.level] += 1;
        }
        hist.into_iter().enumerate().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(level: usize, correct: bool, risk: f64, violation: bool) -> TickRecord {
        TickRecord {
            t: 0.0,
            true_risk: risk,
            estimated_risk: risk,
            level,
            sparsity: level as f64 * 0.3,
            max_allowed_level: 3,
            odd_exit: false,
            violation,
            correct,
            confidence: 0.9,
            inference_energy: Joules(1.0),
            inference_latency: Seconds(0.001),
            transition_energy: Joules::ZERO,
            transition_latency: Seconds::ZERO,
            segment: SegmentKind::Urban,
            weather: Weather::Clear,
            op_state: OperatingState::Normal,
            faults_injected: 0,
            fault_detected: false,
            fault_repaired: false,
            corrupt_inference: false,
            deadline_miss: false,
        }
    }

    fn result(records: Vec<TickRecord>) -> RunResult {
        let violations = records.iter().filter(|r| r.violation).count();
        RunResult {
            policy: "test".into(),
            mechanism: "delta-log".into(),
            defense: "full-chain".into(),
            total_energy: Joules(records.len() as f64),
            dense_energy: Joules(2.0 * records.len() as f64),
            violations,
            recovery_latencies: vec![0.1, 0.3, 0.2],
            transitions: 2,
            faults_injected: 0,
            faults_detected: 0,
            faults_repaired: 0,
            fault_recovery_latencies: Vec::new(),
            trace: Vec::new(),
            trace_dropped: 0,
            records,
        }
    }

    #[test]
    fn energy_saved_fraction() {
        let r = result(vec![record(0, true, 0.1, false); 10]);
        assert!((r.energy_saved_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_and_violations() {
        let r = result(vec![
            record(0, true, 0.1, false),
            record(1, false, 0.8, true),
            record(0, true, 0.9, false),
            record(2, false, 0.2, false),
        ]);
        assert_eq!(r.mean_accuracy(), 0.5);
        assert_eq!(r.violations, 1);
        assert_eq!(r.violation_fraction(), 0.25);
        assert_eq!(r.critical_accuracy(0.7), Some(0.5));
        assert_eq!(r.critical_accuracy(0.95), None);
    }

    #[test]
    fn recovery_stats() {
        let r = result(vec![record(0, true, 0.1, false)]);
        assert!((r.mean_recovery_latency().unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(r.recovery_latency_quantile(0.0), Some(0.1));
        assert_eq!(r.recovery_latency_quantile(1.0), Some(0.3));
        let mut empty = r.clone();
        empty.recovery_latencies.clear();
        assert_eq!(empty.mean_recovery_latency(), None);
        assert_eq!(empty.recovery_latency_quantile(0.5), None);
    }

    #[test]
    fn histogram_and_mean_sparsity() {
        let r = result(vec![
            record(0, true, 0.1, false),
            record(0, true, 0.1, false),
            record(2, true, 0.1, false),
        ]);
        assert_eq!(r.level_histogram(), vec![(0, 2), (1, 0), (2, 1)]);
        assert!((r.mean_sparsity() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deadline_misses_counts_slow_ticks() {
        let mut slow = record(0, true, 0.1, false);
        slow.inference_latency = Seconds(0.2);
        let r = result(vec![record(0, true, 0.1, false), slow]);
        assert_eq!(r.deadline_misses(0.1), 1);
        assert_eq!(r.deadline_misses(0.5), 0);
        assert_eq!(r.deadline_misses(0.0001), 2);
    }

    #[test]
    fn csv_export_shape() {
        let r = result(vec![
            record(0, true, 0.1, false),
            record(2, false, 0.8, true),
        ]);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[0].starts_with("t,true_risk"));
        assert!(lines[0].ends_with("corrupt_inference,deadline_miss"));
        assert_eq!(lines[0].split(',').count(), 22);
        assert_eq!(lines[1].split(',').count(), 22);
        assert!(lines[2].contains(",1,"), "violation flag serialized");
        assert!(lines[1].contains("urban,clear,normal"));
    }

    #[test]
    fn fault_aggregates() {
        let mut corrupt_silent = record(0, false, 0.1, false);
        corrupt_silent.corrupt_inference = true; // op_state stays Normal
        let mut corrupt_loud = record(0, false, 0.1, false);
        corrupt_loud.corrupt_inference = true;
        corrupt_loud.op_state = OperatingState::MinimalRisk;
        let mut degraded = record(1, true, 0.1, false);
        degraded.op_state = OperatingState::Degraded;
        degraded.deadline_miss = true;
        let mut r = result(vec![
            record(0, true, 0.1, false),
            corrupt_silent,
            corrupt_loud,
            degraded,
        ]);
        r.faults_injected = 4;
        r.faults_detected = 3;
        r.faults_repaired = 2;
        r.fault_recovery_latencies = vec![0.5, 1.5];
        assert_eq!(r.detection_rate(), Some(0.75));
        assert_eq!(r.mean_time_to_recover(), Some(1.0));
        assert_eq!(r.corrupt_inference_ticks(), 2);
        assert_eq!(r.silent_corruption_ticks(), 1);
        assert_eq!(r.degraded_ticks(), 1);
        assert_eq!(r.minimal_risk_ticks(), 1);
        assert_eq!(r.deadline_miss_ticks(), 1);
        let clean = result(vec![record(0, true, 0.1, false)]);
        assert_eq!(clean.detection_rate(), None);
        assert_eq!(clean.mean_time_to_recover(), None);
        assert_eq!(clean.silent_corruption_ticks(), 0);
    }

    #[test]
    fn empty_run_edges() {
        let r = result(vec![]);
        assert_eq!(r.mean_accuracy(), 0.0);
        assert_eq!(r.violation_fraction(), 0.0);
        assert_eq!(r.mean_sparsity(), 0.0);
        assert_eq!(r.level_histogram(), vec![(0, 0)]);
    }
}
