//! The K in MAPE-K: all cross-stage state, owned in one place.
//!
//! Every flag and counter that more than one stage reads or writes lives
//! in [`Knowledge`] — the degradation state machine, integrity verdicts,
//! pending restore/reload schedules, fault-window deadlines, fault
//! counters, and the per-tick cost budget. Stages receive `&mut
//! Knowledge` and communicate *only* through it (plus the trace); none
//! of them holds cross-stage state of its own. The managed element
//! (network, pruner, RNGs) is deliberately *not* here — see
//! [`crate::plant::Plant`].

use crate::faults::OperatingState;
use crate::restore::ChainReport;
use crate::trace::{
    ChainHop, DetectionSource, StageId, TickTrace, TraceEvent, TraceEventKind,
};
use reprune_platform::{Bytes, InferenceCost, Joules, Seconds};
use reprune_prune::weights_checksum;
use reprune_nn::Network;
use reprune_platform::StorageHealth;
use serde::{Deserialize, Serialize};

/// Initial retry backoff after a refused storage reload, seconds.
pub(crate) const RELOAD_BACKOFF_MIN_S: f64 = 0.2;

/// Backoff ceiling for storage-reload retries, seconds.
pub(crate) const RELOAD_BACKOFF_MAX_S: f64 = 6.4;

/// Pre-profiled cost of running at one ladder level (one row of the
/// MAPE-K knowledge base).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelKnowledge {
    /// Ladder level.
    pub level: usize,
    /// Nominal sparsity.
    pub sparsity: f64,
    /// Deployment-scale inference cost at this level.
    pub inference: InferenceCost,
    /// Reversal-log entries held when parked at this level (scaled).
    pub log_entries: usize,
}

/// A per-tick ladder-level directive injected by an external arbiter
/// (e.g. `FleetRuntime`'s shared-budget planner) into the Plan stage.
///
/// The cap is an energy allowance expressed as a *minimum prune level*:
/// the arbiter has decided this member's share of the fleet budget only
/// covers running at `level` or deeper. The Plan stage treats it as a
/// floor on the planned level **inside the ODD only**, clamped to the
/// envelope's `max_allowed_level` for the tick — safety overrides
/// (ODD exit, Degraded/MinimalRisk caps, envelope restores) always win
/// over the budget. `None` (the default) leaves planning untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExternalCap {
    /// Minimum ladder level the arbiter asks the member to hold.
    pub level: usize,
}

/// A capacity restore scheduled to complete at a future tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingRestore {
    /// Ladder level being restored to.
    pub target: usize,
    /// Tick time at which the restore completes.
    pub ready_at: f64,
}

/// Costs and flags accumulated while stages work on the current tick;
/// reset by [`Knowledge::begin_tick`] and folded into the
/// [`crate::record::TickRecord`] at the end of the step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickBudget {
    /// Transition latency charged this tick (scheduled + synchronous).
    pub transition_latency: Seconds,
    /// Transition energy charged this tick.
    pub transition_energy: Joules,
    /// Work done synchronously inside this tick, counted against the
    /// control deadline (scheduled multi-tick restores are not).
    pub sync_latency_s: f64,
    /// Effective fault injections that landed this tick.
    pub injected: u32,
    /// Whether any check detected a fault this tick.
    pub detected: bool,
    /// Whether any repair or fallback restore fired this tick.
    pub repaired: bool,
}

/// All cross-stage state of the runtime: the shared knowledge base the
/// Monitor, Analyze, Plan, and Execute stages read and write.
///
/// Ownership rules (DESIGN.md §10): any state read or written by more
/// than one stage lives here and nowhere else; stage implementations may
/// keep *private* state only if no other stage ever needs it (e.g. the
/// default Monitor's EWMA estimator). The managed element is in
/// [`crate::plant::Plant`]; `Knowledge` never owns weights or RNGs.
#[derive(Debug, Clone, PartialEq)]
pub struct Knowledge {
    /// Per-level profiled costs, indexed by ladder level.
    pub levels: Vec<LevelKnowledge>,
    /// Deployment-scale size of the model image.
    pub model_bytes: Bytes,
    /// Current rung of the degradation state machine.
    pub op_state: OperatingState,
    /// Sealed whole-weights checksum, re-verified every tick when the
    /// defense includes checksums; resealed after every trusted
    /// transition.
    pub sealed_checksum: u64,
    /// Live weights are known to disagree with the sealed checksum.
    pub integrity_bad: bool,
    /// The reversal log holds a detected-but-unrepaired corrupt segment.
    pub log_bad: bool,
    /// A multi-tick capacity restore in flight, if any.
    pub pending: Option<PendingRestore>,
    /// A storage reload is required to recover integrity.
    pub reload_wanted: bool,
    /// Completion time of a reload the storage device has accepted.
    pub pending_reload: Option<f64>,
    /// Current storage-reload retry backoff, seconds.
    pub reload_backoff_s: f64,
    /// Earliest time the next reload attempt may fire.
    pub next_reload_attempt_s: f64,
    /// Bit-flips that have landed in the in-RAM snapshot region; applied
    /// to the restored weights when the snapshot hop is used.
    pub snapshot_flips: u32,
    /// Confidence of the most recent inference (Monitor input).
    pub last_confidence: f64,
    /// Ladder transitions executed so far.
    pub transitions: usize,
    /// Effective fault injections so far (windows at onset; bit-flips
    /// that actually landed).
    pub faults_injected: usize,
    /// Faults the armed defense noticed.
    pub faults_detected: usize,
    /// Faults resolved by repair or a successful fallback restore.
    pub faults_repaired: usize,
    /// Onset time of the fault episode currently in progress.
    pub fault_onset: Option<f64>,
    /// Completed fault-episode durations (onset → return to Normal).
    pub fault_recoveries: Vec<f64>,
    /// Manual (test-injected) risk-sensor failure override.
    pub manual_sensor_failed: bool,
    /// Manual (test-injected) confidence-signal failure override.
    pub manual_confidence_failed: bool,
    /// End of the scheduled risk-sensor blackout window.
    pub sensor_fault_until: f64,
    /// End of the scheduled confidence-dropout window.
    pub confidence_fault_until: f64,
    /// End of the scheduled Execute-overrun window.
    pub overrun_until: f64,
    /// Extra per-tick latency while the overrun window is active.
    pub overrun_extra_s: f64,
    /// Per-tick time budget for amortized restores, seconds. When set,
    /// a multi-level climb back toward capacity is spread across ticks:
    /// each tick applies whole one-level slices until the next slice
    /// would overflow this budget (always at least one, so progress is
    /// guaranteed). `None` restores in one shot, scheduling a pending
    /// restore when the transition exceeds the control period.
    pub restore_budget_s: Option<f64>,
    /// Fleet-arbitrated level floor for the next planned tick, if any.
    /// Written by an external budget arbiter between ticks; read by the
    /// Plan stage. Cleared only by the arbiter — a cap persists until
    /// replaced.
    pub external_cap: Option<ExternalCap>,
    /// Costs and flags for the tick currently being stepped.
    pub tick: TickBudget,
}

impl Knowledge {
    /// Creates the knowledge base for a freshly attached runtime.
    pub fn new(levels: Vec<LevelKnowledge>, model_bytes: Bytes, sealed_checksum: u64) -> Self {
        Knowledge {
            levels,
            model_bytes,
            op_state: OperatingState::Normal,
            sealed_checksum,
            integrity_bad: false,
            log_bad: false,
            pending: None,
            reload_wanted: false,
            pending_reload: None,
            reload_backoff_s: RELOAD_BACKOFF_MIN_S,
            next_reload_attempt_s: f64::NEG_INFINITY,
            snapshot_flips: 0,
            last_confidence: 1.0,
            transitions: 0,
            faults_injected: 0,
            faults_detected: 0,
            faults_repaired: 0,
            fault_onset: None,
            fault_recoveries: Vec::new(),
            manual_sensor_failed: false,
            manual_confidence_failed: false,
            sensor_fault_until: f64::NEG_INFINITY,
            confidence_fault_until: f64::NEG_INFINITY,
            overrun_until: f64::NEG_INFINITY,
            overrun_extra_s: 0.0,
            restore_budget_s: None,
            external_cap: None,
            tick: TickBudget::default(),
        }
    }

    /// Resets the per-tick budget at the start of a step.
    pub fn begin_tick(&mut self) {
        self.tick = TickBudget::default();
    }

    /// Folds a chain report into the tick budget: latency and energy are
    /// charged, the latency also counts against the control deadline,
    /// and detection/repair flags are merged.
    pub fn absorb(&mut self, rep: ChainReport) {
        self.tick.transition_latency += rep.latency;
        self.tick.transition_energy += rep.energy;
        self.tick.sync_latency_s += rep.latency.0;
        self.tick.detected |= rep.detected;
        self.tick.repaired |= rep.repaired;
    }

    /// Folds a chain report whose work happens *outside* the control
    /// deadline (scheduled reload attempts, multi-tick restores): only
    /// latency and energy are charged.
    pub fn absorb_deferred(&mut self, rep: ChainReport) {
        self.tick.transition_latency += rep.latency;
        self.tick.transition_energy += rep.energy;
    }

    /// Reseals the whole-weights checksum after a trusted transition.
    pub fn reseal(&mut self, net: &Network) {
        self.sealed_checksum = weights_checksum(net);
    }

    /// Whether any self-announcing fault window is active at `t`.
    pub fn windows_active(&self, t: f64, storage: &StorageHealth) -> bool {
        t < self.sensor_fault_until
            || t < self.confidence_fault_until
            || t < self.overrun_until
            || storage.is_unavailable_at(t)
            || storage.bandwidth_factor_at(t) < 1.0
    }

    /// Escalates the degradation state machine (never de-escalates).
    pub fn enter_state(&mut self, state: OperatingState, t: f64, trace: &mut TickTrace) {
        if state > self.op_state {
            if self.op_state == OperatingState::Normal && self.fault_onset.is_none() {
                self.fault_onset = Some(t);
            }
            trace.record(
                t,
                StageId::Knowledge,
                TraceEventKind::StateChange {
                    from: self.op_state,
                    to: state,
                },
            );
            self.op_state = state;
        }
    }

    /// Counts one detection and records exactly one `fault-detected`
    /// trace event — the only path that increments `faults_detected`, so
    /// the trace count and the aggregate counter stay equal by
    /// construction.
    pub fn note_detected(
        &mut self,
        t: f64,
        stage: StageId,
        source: DetectionSource,
        trace: &mut TickTrace,
    ) {
        self.faults_detected += 1;
        trace.record(t, stage, TraceEventKind::FaultDetected { source });
    }

    /// Counts one repair and records exactly one `fault-repaired` trace
    /// event — the only path that increments `faults_repaired`.
    pub fn note_repaired(&mut self, t: f64, stage: StageId, hop: ChainHop, trace: &mut TickTrace) {
        self.faults_repaired += 1;
        trace.record(t, stage, TraceEventKind::FaultRepaired { hop });
    }

    /// De-escalates once the triggering conditions have cleared:
    /// `MinimalRisk → Degraded` when full capacity is reached and
    /// verified, `Degraded → Normal` when nothing is unresolved and no
    /// fault window is active.
    pub fn relax_state(&mut self, plant: &crate::plant::Plant, t: f64, trace: &mut TickTrace) {
        // A bit-exact level-0 state clears a weights-integrity flag even
        // without the repair chain: the attach-time base checksum is a
        // known-good reference at full capacity.
        if self.integrity_bad
            && self.pending_reload.is_none()
            && plant.pruner.current_level() == 0
            && plant.pruner.verify_restored(&plant.net).is_ok()
        {
            self.integrity_bad = false;
            self.reseal(&plant.net);
        }
        let unresolved = self.integrity_bad
            || self.log_bad
            || self.reload_wanted
            || self.pending_reload.is_some();
        if self.op_state == OperatingState::MinimalRisk
            && !unresolved
            && plant.pruner.current_level() == 0
        {
            trace.record(
                t,
                StageId::Knowledge,
                TraceEventKind::StateChange {
                    from: self.op_state,
                    to: OperatingState::Degraded,
                },
            );
            self.op_state = OperatingState::Degraded;
        }
        if self.op_state == OperatingState::Degraded
            && !unresolved
            && !self.windows_active(t, &plant.storage)
        {
            trace.record(
                t,
                StageId::Knowledge,
                TraceEventKind::StateChange {
                    from: self.op_state,
                    to: OperatingState::Normal,
                },
            );
            self.op_state = OperatingState::Normal;
            if let Some(onset) = self.fault_onset.take() {
                self.fault_recoveries.push(t - onset);
            }
        }
    }

    /// Records a `deadline-missed` event (called by the step wrap-up
    /// when the tick's synchronous work overran the control period).
    pub fn note_deadline_miss(
        &mut self,
        t: f64,
        latency_s: f64,
        budget_s: f64,
        trace: &mut TickTrace,
    ) {
        trace.record(
            t,
            StageId::Knowledge,
            TraceEventKind::DeadlineMissed {
                latency_s,
                budget_s,
            },
        );
    }

    /// Consistency check used by tests and bench self-checks: the number
    /// of `fault-detected` events in `events` must equal the detection
    /// counter (assuming the ring never dropped).
    pub fn detections_match_trace(&self, events: &[TraceEvent]) -> bool {
        events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::FaultDetected { .. }))
            .count()
            == self.faults_detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprune_platform::{Joules, Seconds};

    fn k() -> Knowledge {
        Knowledge::new(Vec::new(), Bytes(1), 0)
    }

    #[test]
    fn absorb_merges_everything_deferred_only_costs() {
        let mut kn = k();
        let rep = ChainReport {
            latency: Seconds(0.5),
            energy: Joules(2.0),
            detected: true,
            repaired: true,
        };
        kn.absorb(rep);
        assert_eq!(kn.tick.transition_latency, Seconds(0.5));
        assert_eq!(kn.tick.transition_energy, Joules(2.0));
        assert_eq!(kn.tick.sync_latency_s, 0.5);
        assert!(kn.tick.detected && kn.tick.repaired);

        let mut kn2 = k();
        kn2.absorb_deferred(rep);
        assert_eq!(kn2.tick.transition_latency, Seconds(0.5));
        assert_eq!(kn2.tick.transition_energy, Joules(2.0));
        assert_eq!(kn2.tick.sync_latency_s, 0.0, "deferred work is off-deadline");
        assert!(!kn2.tick.detected && !kn2.tick.repaired);
    }

    #[test]
    fn absorb_accumulates_across_reports() {
        let mut kn = k();
        for _ in 0..3 {
            kn.absorb(ChainReport {
                latency: Seconds(0.1),
                energy: Joules(1.0),
                detected: false,
                repaired: false,
            });
        }
        assert!((kn.tick.transition_latency.0 - 0.3).abs() < 1e-12);
        assert!((kn.tick.transition_energy.0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn enter_state_escalates_only_and_tracks_onset() {
        let mut kn = k();
        let mut tr = TickTrace::new(8);
        kn.enter_state(OperatingState::Degraded, 1.0, &mut tr);
        assert_eq!(kn.op_state, OperatingState::Degraded);
        assert_eq!(kn.fault_onset, Some(1.0));
        // De-escalation through enter_state is a no-op.
        kn.enter_state(OperatingState::Normal, 2.0, &mut tr);
        assert_eq!(kn.op_state, OperatingState::Degraded);
        assert_eq!(tr.len(), 1, "only the real escalation is traced");
    }

    #[test]
    fn note_detected_keeps_counter_and_trace_equal() {
        let mut kn = k();
        let mut tr = TickTrace::new(64);
        for _ in 0..5 {
            kn.note_detected(0.0, StageId::Analyze, DetectionSource::Scrub, &mut tr);
        }
        kn.note_repaired(0.0, StageId::Execute, ChainHop::Snapshot, &mut tr);
        let events: Vec<TraceEvent> = tr.events().cloned().collect();
        assert_eq!(kn.faults_detected, 5);
        assert_eq!(kn.faults_repaired, 1);
        assert!(kn.detections_match_trace(&events));
    }

    #[test]
    fn begin_tick_resets_budget() {
        let mut kn = k();
        kn.tick.sync_latency_s = 9.0;
        kn.tick.detected = true;
        kn.begin_tick();
        assert_eq!(kn.tick, TickBudget::default());
    }
}
