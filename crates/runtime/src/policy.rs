//! The Plan stage: adaptation policies.

use crate::envelope::SafetyEnvelope;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the reversible-adaptive policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Extra risk margin required before *increasing* sparsity: the level
    /// is only raised if it would still be permitted at
    /// `risk + hysteresis`. Prevents prune/restore oscillation around
    /// thresholds (ablated in experiment F5).
    pub hysteresis: f64,
    /// Consecutive ticks the raise condition must hold before pruning one
    /// level deeper.
    pub dwell_ticks: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            hysteresis: 0.08,
            dwell_ticks: 10,
        }
    }
}

/// An adaptation policy: decides the target ladder level each tick.
///
/// Restoration (lowering the level) is always immediate and driven by the
/// safety envelope; policies only differ in when they *prune*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Never prune: the safety-maximal, energy-maximal baseline.
    NoPruning,
    /// Park at a fixed ladder level forever (conventional static pruning).
    Static {
        /// The fixed level.
        level: usize,
    },
    /// The paper's policy: walk the ladder under the safety envelope with
    /// hysteresis and dwell, restoring instantly on demand.
    ReversibleAdaptive {
        /// Policy hyperparameters.
        config: AdaptiveConfig,
        /// Consecutive ticks the raise condition has held (internal).
        #[serde(skip)]
        raise_streak: usize,
    },
    /// Clairvoyant upper bound: tracks the envelope of the *true* risk
    /// exactly, with no sensor noise, lag, or hysteresis.
    Oracle,
}

impl Policy {
    /// Creates the adaptive policy with the given hyperparameters.
    pub fn adaptive(config: AdaptiveConfig) -> Self {
        Policy::ReversibleAdaptive {
            config,
            raise_streak: 0,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            Policy::NoPruning => "no-pruning".into(),
            Policy::Static { level } => format!("static-L{level}"),
            Policy::ReversibleAdaptive { .. } => "reversible-adaptive".into(),
            Policy::Oracle => "oracle".into(),
        }
    }

    /// Decides the target level for this tick.
    ///
    /// * `estimated_risk` — the Monitor's fused estimate,
    /// * `true_risk` — ground truth (used only by [`Policy::Oracle`]),
    /// * `current_level` — the level currently in effect,
    /// * `envelope` — the safety envelope over the ladder.
    pub fn decide(
        &mut self,
        envelope: &SafetyEnvelope,
        estimated_risk: f64,
        true_risk: f64,
        current_level: usize,
    ) -> usize {
        match self {
            Policy::NoPruning => 0,
            Policy::Static { level } => (*level).min(envelope.levels() - 1),
            Policy::Oracle => envelope.max_level(true_risk),
            Policy::ReversibleAdaptive {
                config,
                raise_streak,
            } => {
                let allowed_now = envelope.max_level(estimated_risk);
                if allowed_now < current_level {
                    // Safety demands capacity: restore immediately, no dwell.
                    *raise_streak = 0;
                    return allowed_now;
                }
                // Consider pruning deeper only with hysteresis margin.
                let allowed_with_margin =
                    envelope.max_level(estimated_risk + config.hysteresis);
                if allowed_with_margin > current_level {
                    *raise_streak += 1;
                    if *raise_streak >= config.dwell_ticks {
                        *raise_streak = 0;
                        return current_level + 1; // one rung at a time
                    }
                } else {
                    *raise_streak = 0;
                }
                current_level
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env4() -> SafetyEnvelope {
        SafetyEnvelope::new(vec![0.6, 0.4, 0.2]).unwrap()
    }

    #[test]
    fn no_pruning_always_zero() {
        let mut p = Policy::NoPruning;
        assert_eq!(p.decide(&env4(), 0.0, 0.0, 3), 0);
        assert_eq!(p.name(), "no-pruning");
    }

    #[test]
    fn static_clamps_to_ladder() {
        let mut p = Policy::Static { level: 9 };
        assert_eq!(p.decide(&env4(), 0.9, 0.9, 0), 3);
        let mut p = Policy::Static { level: 2 };
        assert_eq!(p.decide(&env4(), 0.9, 0.9, 0), 2);
        assert_eq!(p.name(), "static-L2");
    }

    #[test]
    fn oracle_tracks_true_risk_exactly() {
        let mut p = Policy::Oracle;
        assert_eq!(p.decide(&env4(), 0.9, 0.1, 0), 3, "ignores estimate");
        assert_eq!(p.decide(&env4(), 0.1, 0.9, 3), 0);
    }

    #[test]
    fn adaptive_restores_immediately() {
        let mut p = Policy::adaptive(AdaptiveConfig {
            hysteresis: 0.05,
            dwell_ticks: 5,
        });
        // At level 3, risk spikes to 0.7 → full capacity this very tick.
        assert_eq!(p.decide(&env4(), 0.7, 0.7, 3), 0);
    }

    #[test]
    fn adaptive_waits_for_dwell_before_pruning() {
        let mut p = Policy::adaptive(AdaptiveConfig {
            hysteresis: 0.0,
            dwell_ticks: 3,
        });
        // Risk 0.1 permits level 3, but raising takes 3 ticks per rung.
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 0);
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 0);
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 1, "third tick raises");
    }

    #[test]
    fn adaptive_raises_one_rung_at_a_time() {
        let mut p = Policy::adaptive(AdaptiveConfig {
            hysteresis: 0.0,
            dwell_ticks: 1,
        });
        assert_eq!(p.decide(&env4(), 0.05, 0.05, 0), 1);
        assert_eq!(p.decide(&env4(), 0.05, 0.05, 1), 2);
        assert_eq!(p.decide(&env4(), 0.05, 0.05, 2), 3);
        assert_eq!(p.decide(&env4(), 0.05, 0.05, 3), 3, "stays at top");
    }

    #[test]
    fn hysteresis_blocks_marginal_pruning() {
        let mut p = Policy::adaptive(AdaptiveConfig {
            hysteresis: 0.1,
            dwell_ticks: 1,
        });
        // Risk 0.35 permits level 2 outright, but 0.35+0.1=0.45 only
        // permits level 1 → from level 1, no deeper pruning.
        assert_eq!(p.decide(&env4(), 0.35, 0.35, 1), 1);
        // Risk 0.25: 0.25+0.1=0.35 permits level 2 → raise.
        assert_eq!(p.decide(&env4(), 0.25, 0.25, 1), 2);
    }

    #[test]
    fn interrupted_dwell_resets_streak() {
        let mut p = Policy::adaptive(AdaptiveConfig {
            hysteresis: 0.0,
            dwell_ticks: 3,
        });
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 0);
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 0);
        // A risky tick interrupts the streak…
        assert_eq!(p.decide(&env4(), 0.7, 0.7, 0), 0);
        // …so the count restarts.
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 0);
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 0);
        assert_eq!(p.decide(&env4(), 0.1, 0.1, 0), 1);
    }

    #[test]
    fn names() {
        assert_eq!(Policy::Oracle.name(), "oracle");
        assert_eq!(
            Policy::adaptive(AdaptiveConfig::default()).name(),
            "reversible-adaptive"
        );
    }
}
