//! Structured tick-event observability: the [`TickTrace`] ring buffer.
//!
//! Every MAPE-K stage records typed events as it works — a decision
//! taken, a fault detected, a fallback-chain hop fired, a deadline
//! missed. The trace turns fault campaigns and policy comparisons from
//! opaque aggregate counters into explainable timelines: *which* check
//! noticed the corruption, *which* hop repaired it, and *when* the state
//! machine moved.
//!
//! The buffer is bounded (oldest events drop first, with an explicit
//! drop counter) so a long fleet run cannot grow without limit, and the
//! recording path allocates nothing beyond the ring slots. Events render
//! to JSON-lines via [`TraceEvent::to_json_line`] — hand-rolled because
//! the workspace's serde is a compile-only shim (DESIGN.md §6).

use crate::faults::OperatingState;
use std::collections::VecDeque;

/// Default event capacity of a [`TickTrace`]; enough for multi-minute
/// drives under a severe fault storm without dropping anything.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// Which pipeline stage recorded an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// The world outside the loop: scheduled fault injection.
    Environment,
    /// Monitor: sensor/confidence channels and window health.
    Monitor,
    /// Analyze: integrity verdicts and risk assessment.
    Analyze,
    /// Plan: level selection.
    Plan,
    /// Execute: transitions, the fallback chain, reload scheduling.
    Execute,
    /// Knowledge: cross-stage state transitions (degradation machine,
    /// deadline accounting).
    Knowledge,
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StageId::Environment => "environment",
            StageId::Monitor => "monitor",
            StageId::Analyze => "analyze",
            StageId::Plan => "plan",
            StageId::Execute => "execute",
            StageId::Knowledge => "knowledge",
        };
        write!(f, "{s}")
    }
}

/// Which check noticed a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionSource {
    /// A self-announcing fault window observed at onset by the armed
    /// health monitor.
    WindowOnset,
    /// Per-segment checksum verification during a reversal-log pop.
    VerifyOnPop,
    /// The incremental background scrub.
    Scrub,
    /// The sealed whole-weights checksum re-verified each tick.
    SealedChecksum,
    /// The attach-time base checksum rejecting a corrupt snapshot.
    SnapshotChecksum,
}

impl std::fmt::Display for DetectionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DetectionSource::WindowOnset => "window-onset",
            DetectionSource::VerifyOnPop => "verify-on-pop",
            DetectionSource::Scrub => "scrub",
            DetectionSource::SealedChecksum => "sealed-checksum",
            DetectionSource::SnapshotChecksum => "snapshot-checksum",
        };
        write!(f, "{s}")
    }
}

/// One hop of the restore fallback chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainHop {
    /// Delta restore through the reversal log.
    Delta,
    /// Shadow-copy repair of a corrupt log segment.
    ShadowRepair,
    /// Full restore from the in-RAM snapshot.
    Snapshot,
    /// Full restore from the base image persisted in the on-disk
    /// reversal-log spill (sits between snapshot and storage reload:
    /// already durable, but cheaper and available even while the model
    /// store is degraded).
    DiskReload,
    /// Model-image reload from storage.
    StorageReload,
}

impl std::fmt::Display for ChainHop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ChainHop::Delta => "delta",
            ChainHop::ShadowRepair => "shadow-repair",
            ChainHop::Snapshot => "snapshot",
            ChainHop::DiskReload => "disk-reload",
            ChainHop::StorageReload => "storage-reload",
        };
        write!(f, "{s}")
    }
}

/// What happened — the typed payload of one trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A scheduled fault event fired; `landed` counts the effective
    /// injections it produced.
    FaultInjected {
        /// Short name of the fault family.
        kind: &'static str,
        /// Effective injections that landed.
        landed: u32,
    },
    /// An armed check noticed a fault. Exactly one such event is
    /// recorded per `faults_detected` increment.
    FaultDetected {
        /// The check that fired.
        source: DetectionSource,
    },
    /// A repair or fallback restore resolved a fault. Exactly one such
    /// event is recorded per `faults_repaired` increment.
    FaultRepaired {
        /// The hop that resolved it.
        hop: ChainHop,
    },
    /// The fallback chain charged one hop.
    ChainStep {
        /// The hop fired.
        hop: ChainHop,
    },
    /// The Plan stage chose a target level different from the current
    /// one.
    DecisionTaken {
        /// Level in effect when the decision was made.
        current: usize,
        /// Level the policy wanted before degradation caps.
        planned: usize,
        /// Level actually commanded.
        target: usize,
    },
    /// The degradation state machine moved.
    StateChange {
        /// Rung before.
        from: OperatingState,
        /// Rung after.
        to: OperatingState,
    },
    /// A multi-tick capacity restore was scheduled.
    RestoreScheduled {
        /// Ladder level being restored to.
        target: usize,
        /// Tick time at which it completes.
        ready_at: f64,
    },
    /// A pending restore was retargeted by a deeper emergency.
    RestoreRetargeted {
        /// The new, lower target level.
        target: usize,
    },
    /// A scheduled restore completed.
    RestoreCompleted {
        /// Level in effect after completion.
        level: usize,
    },
    /// One per-tick slice of an amortized (budgeted) restore climb
    /// finished; the climb reaches `target` over one or more ticks.
    RestoreSlice {
        /// Level in effect after this slice.
        level: usize,
        /// Level the climb is heading for.
        target: usize,
    },
    /// A storage reload was accepted by the device and scheduled.
    ReloadScheduled {
        /// Tick time at which the image arrives.
        ready_at: f64,
    },
    /// The storage device refused the reload; retry scheduled with
    /// backoff.
    ReloadDeferred {
        /// Next attempt time.
        next_attempt_s: f64,
    },
    /// The storage device failed permanently; no reload will succeed.
    ReloadImpossible,
    /// A scheduled storage reload completed.
    ReloadCompleted,
    /// Inference plus synchronous repair work overran the control
    /// period.
    DeadlineMissed {
        /// Work performed this tick, seconds.
        latency_s: f64,
        /// The control period, seconds.
        budget_s: f64,
    },
    /// A torn append to the durable reversal-log spill was caught by
    /// the read-back seal check and repaired by truncating back to the
    /// pre-append record boundary.
    SpillTornRepair {
        /// Bytes of partial frame discarded.
        bytes: u64,
    },
    /// The durable spill device lost its tail (truncation fault); the
    /// log was cut back to the last intact record boundary.
    SpillTailTruncated {
        /// Bytes of log lost to the truncation.
        bytes: u64,
    },
}

impl TraceEventKind {
    /// Stable kebab-case name of the event kind (the `event` field of
    /// the JSON rendering).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::FaultInjected { .. } => "fault-injected",
            TraceEventKind::FaultDetected { .. } => "fault-detected",
            TraceEventKind::FaultRepaired { .. } => "fault-repaired",
            TraceEventKind::ChainStep { .. } => "chain-step",
            TraceEventKind::DecisionTaken { .. } => "decision-taken",
            TraceEventKind::StateChange { .. } => "state-change",
            TraceEventKind::RestoreScheduled { .. } => "restore-scheduled",
            TraceEventKind::RestoreRetargeted { .. } => "restore-retargeted",
            TraceEventKind::RestoreCompleted { .. } => "restore-completed",
            TraceEventKind::RestoreSlice { .. } => "restore-slice",
            TraceEventKind::ReloadScheduled { .. } => "reload-scheduled",
            TraceEventKind::ReloadDeferred { .. } => "reload-deferred",
            TraceEventKind::ReloadImpossible => "reload-impossible",
            TraceEventKind::ReloadCompleted => "reload-completed",
            TraceEventKind::DeadlineMissed { .. } => "deadline-missed",
            TraceEventKind::SpillTornRepair { .. } => "spill-torn-repair",
            TraceEventKind::SpillTailTruncated { .. } => "spill-tail-truncated",
        }
    }
}

/// One recorded stage event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number across the whole run (never reset, so
    /// drops are visible as gaps).
    pub seq: u64,
    /// Tick time the event was recorded at, seconds.
    pub t: f64,
    /// The stage that recorded it.
    pub stage: StageId,
    /// The typed payload.
    pub kind: TraceEventKind,
}

/// Renders an `f64` as a JSON number. `{:?}` is shortest-round-trip and
/// always parseable; non-finite values (which JSON cannot express) are
/// rendered as `null` — they never occur in recorded events by
/// construction, but the dump must stay parseable regardless.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".into()
    }
}

impl TraceEvent {
    /// Renders the event as one line of JSON (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"t\":{},\"stage\":\"{}\",\"event\":\"{}\"",
            self.seq,
            json_f64(self.t),
            self.stage,
            self.kind.name()
        );
        match &self.kind {
            TraceEventKind::FaultInjected { kind, landed } => {
                s.push_str(&format!(",\"kind\":\"{kind}\",\"landed\":{landed}"));
            }
            TraceEventKind::FaultDetected { source } => {
                s.push_str(&format!(",\"source\":\"{source}\""));
            }
            TraceEventKind::FaultRepaired { hop } | TraceEventKind::ChainStep { hop } => {
                s.push_str(&format!(",\"hop\":\"{hop}\""));
            }
            TraceEventKind::DecisionTaken {
                current,
                planned,
                target,
            } => {
                s.push_str(&format!(
                    ",\"current\":{current},\"planned\":{planned},\"target\":{target}"
                ));
            }
            TraceEventKind::StateChange { from, to } => {
                s.push_str(&format!(",\"from\":\"{from}\",\"to\":\"{to}\""));
            }
            TraceEventKind::RestoreScheduled { target, ready_at } => {
                s.push_str(&format!(
                    ",\"target\":{target},\"ready_at\":{}",
                    json_f64(*ready_at)
                ));
            }
            TraceEventKind::RestoreRetargeted { target } => {
                s.push_str(&format!(",\"target\":{target}"));
            }
            TraceEventKind::RestoreCompleted { level } => {
                s.push_str(&format!(",\"level\":{level}"));
            }
            TraceEventKind::RestoreSlice { level, target } => {
                s.push_str(&format!(",\"level\":{level},\"target\":{target}"));
            }
            TraceEventKind::ReloadScheduled { ready_at } => {
                s.push_str(&format!(",\"ready_at\":{}", json_f64(*ready_at)));
            }
            TraceEventKind::ReloadDeferred { next_attempt_s } => {
                s.push_str(&format!(",\"next_attempt_s\":{}", json_f64(*next_attempt_s)));
            }
            TraceEventKind::DeadlineMissed {
                latency_s,
                budget_s,
            } => {
                s.push_str(&format!(
                    ",\"latency_s\":{},\"budget_s\":{}",
                    json_f64(*latency_s),
                    json_f64(*budget_s)
                ));
            }
            TraceEventKind::SpillTornRepair { bytes }
            | TraceEventKind::SpillTailTruncated { bytes } => {
                s.push_str(&format!(",\"bytes\":{bytes}"));
            }
            TraceEventKind::ReloadImpossible | TraceEventKind::ReloadCompleted => {}
        }
        s.push('}');
        s
    }
}

/// Bounded ring buffer of stage events for one runtime.
///
/// Recording is O(1); when the buffer is full the oldest event is
/// dropped and [`TickTrace::dropped`] is incremented, so consumers can
/// tell a complete trace from a truncated one. Sequence numbers are
/// global across the run and never reused.
#[derive(Debug, Clone, PartialEq)]
pub struct TickTrace {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TickTrace {
    /// Creates a trace bounded to `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TickTrace {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Rebuilds an empty trace that continues an interrupted run's
    /// numbering: the next event gets `next_seq` and the drop counter
    /// resumes at `dropped`. Used by crash recovery so a resumed run's
    /// trace tail lines up byte-for-byte with the uninterrupted run.
    pub fn resume(capacity: usize, next_seq: u64, dropped: u64) -> Self {
        let mut tr = TickTrace::new(capacity);
        tr.next_seq = next_seq;
        tr.dropped = dropped;
        tr
    }

    /// Sequence number the next recorded event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records one event at tick time `t`.
    pub fn record(&mut self, t: f64, stage: StageId, kind: TraceEventKind) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceEvent {
            seq: self.next_seq,
            t,
            stage,
            kind,
        });
        self.next_seq += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Takes all held events out, oldest first. Sequence numbering
    /// continues across drains.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl Default for TickTrace {
    fn default() -> Self {
        TickTrace::new(DEFAULT_TRACE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: &mut TickTrace, t: f64) {
        trace.record(
            t,
            StageId::Execute,
            TraceEventKind::ChainStep {
                hop: ChainHop::Delta,
            },
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut tr = TickTrace::new(3);
        for i in 0..5 {
            ev(&mut tr, i as f64);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        assert_eq!(tr.recorded(), 5);
        let seqs: Vec<u64> = tr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest dropped, seq preserved");
    }

    #[test]
    fn drain_keeps_sequence_running() {
        let mut tr = TickTrace::new(8);
        ev(&mut tr, 0.0);
        ev(&mut tr, 0.1);
        let first = tr.drain();
        assert_eq!(first.len(), 2);
        assert!(tr.is_empty());
        ev(&mut tr, 0.2);
        assert_eq!(tr.events().next().unwrap().seq, 2);
    }

    #[test]
    fn json_lines_are_wellformed() {
        let kinds = vec![
            TraceEventKind::FaultInjected {
                kind: "log-bit-flip",
                landed: 3,
            },
            TraceEventKind::FaultDetected {
                source: DetectionSource::Scrub,
            },
            TraceEventKind::FaultRepaired {
                hop: ChainHop::ShadowRepair,
            },
            TraceEventKind::ChainStep {
                hop: ChainHop::Snapshot,
            },
            TraceEventKind::DecisionTaken {
                current: 2,
                planned: 0,
                target: 0,
            },
            TraceEventKind::StateChange {
                from: OperatingState::Normal,
                to: OperatingState::Degraded,
            },
            TraceEventKind::RestoreScheduled {
                target: 1,
                ready_at: 3.25,
            },
            TraceEventKind::RestoreRetargeted { target: 0 },
            TraceEventKind::RestoreCompleted { level: 0 },
            TraceEventKind::RestoreSlice { level: 2, target: 0 },
            TraceEventKind::ReloadScheduled { ready_at: 9.5 },
            TraceEventKind::ReloadDeferred {
                next_attempt_s: 10.0,
            },
            TraceEventKind::ReloadImpossible,
            TraceEventKind::ReloadCompleted,
            TraceEventKind::DeadlineMissed {
                latency_s: 0.15,
                budget_s: 0.1,
            },
            TraceEventKind::SpillTornRepair { bytes: 17 },
            TraceEventKind::SpillTailTruncated { bytes: 4096 },
        ];
        let mut tr = TickTrace::new(64);
        for k in kinds {
            tr.record(1.5, StageId::Analyze, k);
        }
        for e in tr.events() {
            let line = e.to_json_line();
            assert!(line.starts_with("{\"seq\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
            assert_eq!(line.matches('"').count() % 2, 0, "quotes balance: {line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "braces balance: {line}"
            );
            assert!(line.contains(&format!("\"event\":\"{}\"", e.kind.name())));
            assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        }
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.1), "0.1");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            TraceEventKind::FaultDetected {
                source: DetectionSource::SealedChecksum
            }
            .name(),
            "fault-detected"
        );
        assert_eq!(TraceEventKind::ReloadCompleted.name(), "reload-completed");
        assert_eq!(
            TraceEventKind::SpillTornRepair { bytes: 1 }.name(),
            "spill-torn-repair"
        );
        assert_eq!(
            TraceEventKind::SpillTailTruncated { bytes: 1 }.name(),
            "spill-tail-truncated"
        );
        assert_eq!(StageId::Environment.to_string(), "environment");
        assert_eq!(DetectionSource::VerifyOnPop.to_string(), "verify-on-pop");
        assert_eq!(ChainHop::StorageReload.to_string(), "storage-reload");
        assert_eq!(ChainHop::DiskReload.to_string(), "disk-reload");
    }

    #[test]
    fn resume_continues_numbering() {
        let mut tr = TickTrace::resume(8, 41, 3);
        assert_eq!(tr.next_seq(), 41);
        assert_eq!(tr.dropped(), 3);
        assert!(tr.is_empty());
        ev(&mut tr, 2.0);
        assert_eq!(tr.events().next().unwrap().seq, 41);
        assert_eq!(tr.recorded(), 42);
    }
}
