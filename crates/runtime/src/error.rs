use reprune_nn::NnError;
use reprune_prune::PruneError;
use std::fmt;

/// Error type for the runtime layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A pruning operation failed.
    Prune(PruneError),
    /// A network operation failed.
    Nn(NnError),
    /// Runtime configuration was inconsistent.
    BadConfig {
        /// Human-readable description.
        message: String,
    },
}

impl RuntimeError {
    /// Convenience constructor for [`RuntimeError::BadConfig`].
    pub fn bad_config(message: impl Into<String>) -> Self {
        RuntimeError::BadConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Prune(e) => write!(f, "prune error: {e}"),
            RuntimeError::Nn(e) => write!(f, "nn error: {e}"),
            RuntimeError::BadConfig { message } => write!(f, "bad runtime config: {message}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Prune(e) => Some(e),
            RuntimeError::Nn(e) => Some(e),
            RuntimeError::BadConfig { .. } => None,
        }
    }
}

impl From<PruneError> for RuntimeError {
    fn from(e: PruneError) -> Self {
        RuntimeError::Prune(e)
    }
}

impl From<NnError> for RuntimeError {
    fn from(e: NnError) -> Self {
        RuntimeError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = RuntimeError::bad_config("no levels");
        assert!(e.to_string().contains("no levels"));
        assert!(e.source().is_none());
        let e: RuntimeError = PruneError::bad_ladder("x").into();
        assert!(e.source().is_some());
        let e: RuntimeError = NnError::UnknownLayer { index: 1 }.into();
        assert!(e.source().is_some());
    }
}
