//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that the reprune test
//! suites use: `Strategy` with `prop_map`/`prop_flat_map`/`boxed`,
//! numeric range strategies, tuple strategies, `Just`, `any::<T>()`,
//! `prop::collection::vec`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros with
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, accepted for an offline build:
//! no shrinking (failures report the raw counterexample), no
//! persisted failure seeds, and case generation is seeded from the
//! test function's name so every run is deterministic.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix style generator backing every strategy.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Seed helper: FNV-1a over the test name, so each `proptest!` test
/// gets a stable, distinct stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives — the engine behind
/// `prop_oneof!`.
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span.max(1)) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 spans can overflow i128-as-u64 math above only in degenerate
// cases, but give it a direct impl to stay exact across the full range.
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        self.start + rng.below((self.end - self.start).max(1))
    }
}
impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let span = self.end().wrapping_sub(*self.start()).wrapping_add(1);
        if span == 0 {
            rng.next_u64()
        } else {
            self.start() + rng.below(span)
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}
impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}
impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}
impl Strategy for RangeInclusive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start() + (rng.next_f64() as f32) * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.next_f64() * 2.0 - 1.0) as f32 * 1.0e3
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() * 2.0 - 1.0) * 1.0e6
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`]; inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure carried out of a test-case closure by `prop_assert!`.
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let case_desc = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", $arg));
                    )*
                    s
                };
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!(
                        "proptest case {} failed: {}\n  inputs: {}",
                        case, e, case_desc
                    ),
                }
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} != {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} != {:?}: {}", a, b, format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} == {:?}", a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, OneOf, Strategy, TestRng,
    };

    /// Mirror of `proptest::prelude::prop` so `prop::collection::vec`
    /// resolves.
    pub mod prop {
        pub use crate::collection;
    }
}
