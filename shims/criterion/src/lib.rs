//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API used by the reprune bench
//! suites — `Criterion::benchmark_group` / `bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! warmup-then-measure loop over `std::time::Instant`. No statistical
//! analysis, outlier rejection, plotting, or saved baselines: each
//! benchmark prints a single mean time per iteration. Good enough to
//! keep `cargo bench` runnable (and the bench code compiling under
//! `cargo test`) without the registry.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times one batch of `iters` calls and returns the mean nanoseconds per
/// iteration. Building block for [`sample_batches`] and for callers that
/// need custom interleaving (e.g. fair A/B comparison on a noisy host).
pub fn time_batch<O, F: FnMut() -> O>(iters: u32, routine: &mut F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(routine());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
}

/// Per-batch timing samples with order-statistic summaries.
///
/// Unlike the print-only [`Bencher`] path, this is a *programmatic* API:
/// the perf-trajectory harness records medians and p95s into JSON rather
/// than stdout.
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    /// Mean nanoseconds per iteration, one entry per measured batch.
    pub batch_ns: Vec<f64>,
}

impl SampleStats {
    /// The `q`-quantile (0.0..=1.0) of the per-batch means, by
    /// nearest-rank on the sorted samples. Returns 0.0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.batch_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.batch_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Median nanoseconds per iteration.
    pub fn median_ns(&self) -> f64 {
        self.percentile(0.5)
    }

    /// 95th-percentile nanoseconds per iteration.
    pub fn p95_ns(&self) -> f64 {
        self.percentile(0.95)
    }
}

/// Runs one warmup batch, then `batches` measured batches of
/// `iters_per_batch` calls each, returning the per-batch means.
pub fn sample_batches<O, F: FnMut() -> O>(
    batches: usize,
    iters_per_batch: u32,
    mut routine: F,
) -> SampleStats {
    for _ in 0..iters_per_batch {
        black_box(routine());
    }
    let mut stats = SampleStats {
        batch_ns: Vec::with_capacity(batches),
    };
    for _ in 0..batches {
        stats.batch_ns.push(time_batch(iters_per_batch, &mut routine));
    }
    stats
}

/// How `iter_batched` amortises setup; all variants behave the same
/// here (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Collects timing for one benchmark routine.
pub struct Bencher {
    warmup_iters: u32,
    measure_time: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warmup_iters: 3,
            measure_time: Duration::from_millis(20),
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        let deadline = Instant::now() + self.measure_time;
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.measure_time;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<48} (no iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per_iter >= 1.0e9 {
            (per_iter / 1.0e9, "s")
        } else if per_iter >= 1.0e6 {
            (per_iter / 1.0e6, "ms")
        } else if per_iter >= 1.0e3 {
            (per_iter / 1.0e3, "us")
        } else {
            (per_iter, "ns")
        };
        println!("{id:<48} {value:>10.2} {unit}/iter  ({} iters)", self.iters);
    }
}

/// Entry point handed to each benchmark target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.into());
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
