//! Offline stand-in for `serde_derive`.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; here the
//! vendored `serde` facade already provides blanket impls of its marker
//! traits, so the derives only need to *accept* the syntax — including
//! `#[serde(...)]` field attributes — and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
