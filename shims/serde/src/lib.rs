//! Offline stand-in for the `serde` facade crate.
//!
//! The reprune workspace uses serde exclusively through
//! `#[derive(Serialize, Deserialize)]` (plus `#[serde(skip)]` field
//! attributes); no code path serializes anything through serde at
//! runtime — model persistence is the hand-rolled format in
//! `reprune-nn::serialize`. This shim therefore only has to make the
//! derive syntax compile in an offline build:
//!
//! * `Serialize` / `Deserialize` are marker traits with blanket impls,
//!   so every type trivially satisfies any `T: Serialize` bound.
//! * The derive macros (re-exported from the sibling `serde_derive`
//!   shim) accept the real attribute grammar and expand to nothing.
//!
//! If a future PR needs actual serialization, replace this shim with a
//! vendored copy of the real crate; the API surface used by the
//! workspace is intentionally kept to the subset above so the swap is
//! mechanical.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::DeserializeOwned;
}
