//! Fine-tuning a *pruned* network without losing reversibility: masks are
//! re-asserted after every optimizer step, and the original weights stay
//! safe in the reversal log the whole time.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example fine_tune_pruned
//! ```

use reprune::nn::dataset::{SceneContext, SceneDataset};
use reprune::nn::train::{fine_tune, train_classifier, TrainConfig};
use reprune::nn::{metrics, models};
use reprune::prune::{LadderConfig, PruneCriterion, ReversiblePruner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SceneDataset::builder()
        .samples(500)
        .seed(21)
        .context(SceneContext::Clear)
        .build();
    let (train, test) = data.split(0.8);
    let mut net = models::default_perception_cnn(5)?;
    train_classifier(
        &mut net,
        train.samples(),
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
    )?;
    let dense_acc = metrics::evaluate(&mut net, test.samples())?.accuracy;
    println!("dense test accuracy: {:.1}%", 100.0 * dense_acc);

    // Prune hard, structured.
    let ladder = LadderConfig::new(vec![0.0, 0.75])
        .criterion(PruneCriterion::ChannelL2)
        .build(&net)?;
    let mut pruner = ReversiblePruner::attach(&net, ladder)?;
    pruner.set_level(&mut net, 1)?;
    let pruned_acc = metrics::evaluate(&mut net, test.samples())?.accuracy;
    println!("pruned (75% channels) accuracy: {:.1}%", 100.0 * pruned_acc);

    // Fine-tune the surviving weights; re-assert masks after each step so
    // evicted channels stay evicted.
    for step in 0..30 {
        fine_tune(&mut net, train.samples(), 1, 0.01, step)?;
        pruner.reapply_masks(&mut net)?;
    }
    let tuned_acc = metrics::evaluate(&mut net, test.samples())?.accuracy;
    println!("fine-tuned pruned accuracy: {:.1}%", 100.0 * tuned_acc);

    // The door is still two-way — but note what reversibility now means:
    // restoring brings back the *original* trained weights, not the
    // fine-tuned ones. The reversal log protects the certified baseline.
    pruner.set_level(&mut net, 0)?;
    match pruner.verify_restored(&net) {
        Ok(()) => println!("restore is bit-exact to the pre-fine-tune baseline? yes"),
        Err(e) => println!("restore differs from baseline (expected — surviving weights were tuned): {e}"),
    }
    let restored_acc = metrics::evaluate(&mut net, test.samples())?.accuracy;
    println!("restored full-capacity accuracy: {:.1}%", 100.0 * restored_acc);
    println!(
        "\nsummary: dense {:.1}% → pruned {:.1}% → fine-tuned {:.1}% → restored {:.1}%",
        100.0 * dense_acc,
        100.0 * pruned_acc,
        100.0 * tuned_acc,
        100.0 * restored_acc
    );
    Ok(())
}
