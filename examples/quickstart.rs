//! Quickstart: train a perception CNN, prune it reversibly, and verify
//! the bit-exact restore — the whole idea of the paper in ~80 lines.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example quickstart
//! ```

use std::time::Instant;

use reprune::nn::dataset::{SceneContext, SceneDataset};
use reprune::nn::train::{train_classifier, TrainConfig};
use reprune::nn::{metrics, models};
use reprune::prune::{LadderConfig, PruneCriterion, ReversiblePruner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data + model: a synthetic road-scene classifier (DESIGN.md §5).
    let data = SceneDataset::builder()
        .samples(500)
        .seed(1)
        .context_mix(&[(SceneContext::Clear, 0.7), (SceneContext::Rain, 0.3)])
        .build();
    let (train, test) = data.split(0.8);
    let mut net = models::default_perception_cnn(42)?;
    println!("training {} ({} parameters)…", net.name(), net.num_parameters());
    let history = train_classifier(
        &mut net,
        train.samples(),
        &TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
    )?;
    println!(
        "  final train accuracy {:.1}%",
        100.0 * history.final_accuracy().unwrap_or(0.0)
    );
    let dense = metrics::evaluate(&mut net, test.samples())?;
    println!("  test accuracy (dense): {:.1}%", 100.0 * dense.accuracy);

    // 2. Build a nested sparsity ladder over the trained weights.
    let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
        .criterion(PruneCriterion::ChannelL2)
        .build(&net)?;
    let mut pruner = ReversiblePruner::attach(&net, ladder)?;

    // 3. Walk up the ladder: each step evicts weights into the reversal log.
    println!("\n{:<8} {:>10} {:>12} {:>12}", "level", "sparsity", "accuracy", "log bytes");
    for level in 0..4 {
        pruner.set_level(&mut net, level)?;
        let eval = metrics::evaluate(&mut net, test.samples())?;
        println!(
            "{:<8} {:>9.0}% {:>11.1}% {:>12}",
            level,
            100.0 * pruner.current_sparsity(),
            100.0 * eval.accuracy,
            pruner.log_bytes()
        );
    }

    // 4. Back to the future: restore full capacity in one call.
    let t0 = Instant::now();
    let transition = pruner.restore_full(&mut net)?;
    let wall = t0.elapsed();
    pruner.verify_restored(&net)?;
    let restored = metrics::evaluate(&mut net, test.samples())?;
    println!(
        "\nrestored {} weights in {:?} (bit-exact; test accuracy back to {:.1}%)",
        transition.weights_restored,
        wall,
        100.0 * restored.accuracy
    );
    assert_eq!(restored.accuracy, dense.accuracy);
    Ok(())
}
