//! A 10-minute mixed commute (highway → urban → intersections) driven
//! under four policies, printing the energy / safety trade-off table —
//! the same loop that produces the paper's end-to-end results.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example highway_commute
//! ```

use reprune::nn::dataset::{SceneContext, SceneDataset};
use reprune::nn::train::{train_classifier, TrainConfig};
use reprune::nn::{models, Network};
use reprune::prune::{LadderConfig, PruneCriterion};
use reprune::runtime::envelope::SafetyEnvelope;
use reprune::runtime::manager::{RestoreMechanism, RuntimeManager, RuntimeManagerConfig};
use reprune::runtime::policy::{AdaptiveConfig, Policy};
use reprune::runtime::RunResult;
use reprune::scenario::{Scenario, ScenarioConfig, SegmentKind};

fn trained_net() -> Result<Network, Box<dyn std::error::Error>> {
    let data = SceneDataset::builder()
        .samples(400)
        .seed(11)
        .context_mix(&[
            (SceneContext::Clear, 0.55),
            (SceneContext::Rain, 0.15),
            (SceneContext::Night, 0.15),
            (SceneContext::Fog, 0.15),
        ])
        .build();
    let mut net = models::default_perception_cnn(3)?;
    train_classifier(
        &mut net,
        data.samples(),
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
    )?;
    Ok(net)
}

fn drive(net: &Network, scenario: &Scenario, policy: Policy) -> Result<RunResult, Box<dyn std::error::Error>> {
    let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
        .criterion(PruneCriterion::ChannelL2)
        .build(net)?;
    let envelope = SafetyEnvelope::new(vec![0.6, 0.4, 0.2])?;
    let mut mgr = RuntimeManager::attach(
        net.clone(),
        ladder,
        RuntimeManagerConfig::new(policy, envelope)
            .mechanism(RestoreMechanism::DeltaLog)
            .frame_seed(77),
    )?;
    Ok(mgr.run(scenario)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = trained_net()?;
    let scenario = ScenarioConfig::new()
        .duration_s(600.0)
        .seed(2024)
        .start_segment(SegmentKind::Highway)
        .event_rate_scale(1.5)
        .generate();
    println!(
        "commute: {:.0} s, mean risk {:.2}, {} events, {:.0}% of ticks critical (risk ≥ 0.6)\n",
        scenario.duration_s(),
        scenario.mean_risk(),
        scenario.events().len(),
        100.0 * scenario.critical_fraction(0.6)
    );

    let policies = vec![
        Policy::NoPruning,
        Policy::Static { level: 1 },
        Policy::Static { level: 3 },
        Policy::adaptive(AdaptiveConfig::default()),
        Policy::Oracle,
    ];

    println!(
        "{:<22} {:>12} {:>10} {:>11} {:>11} {:>9}",
        "policy", "energy (J)", "saved", "violations", "accuracy", "switches"
    );
    for policy in policies {
        let r = drive(&net, &scenario, policy)?;
        println!(
            "{:<22} {:>12.2} {:>9.1}% {:>11} {:>10.1}% {:>9}",
            r.policy,
            r.total_energy.0,
            100.0 * r.energy_saved_fraction(),
            r.violations,
            100.0 * r.mean_accuracy(),
            r.transitions
        );
    }
    println!("\nthe reversible-adaptive row is the paper's point: near-static-pruning");
    println!("energy with near-zero safety violations, because restoration is instant.");
    Ok(())
}
