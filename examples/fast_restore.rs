//! The restore fast path, measured two ways.
//!
//! First, wall-clock percentiles for raw prune-and-restore round trips
//! on the reference perception CNN — the paper's "back to the future"
//! primitive — expressed as a multiple of one full-density inference
//! tick. Then a severe fault storm driven twice through the runtime:
//! once with one-shot restores, once with an amortized per-tick restore
//! budget that spreads multi-level climbs across ticks (visible as
//! `restore-slice` trace events), showing the same safety outcome with
//! the climb cost smeared instead of spiked.
//!
//! Run with:
//! ```sh
//! cargo run --release --example fast_restore
//! ```

use std::time::Instant;

use reprune::nn::dataset::{render_scene, SceneContext};
use reprune::nn::{models, Scratch};
use reprune::prune::{ladder_plans, LadderConfig, PruneCriterion, ReversiblePruner};
use reprune::runtime::envelope::SafetyEnvelope;
use reprune::runtime::manager::{RuntimeManager, RuntimeManagerConfig};
use reprune::runtime::policy::{AdaptiveConfig, Policy};
use reprune::runtime::{storm_events, FaultDefense, StormConfig};
use reprune::scenario::{ScenarioConfig, SegmentKind};
use reprune::tensor::rng::Prng;

const ROUNDTRIPS: usize = 200;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Raw round-trip latency vs one inference tick. ---
    let mut net = models::default_perception_cnn(11)?;
    let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
        .criterion(PruneCriterion::ChannelL2)
        .build(&net)?;
    let plans = ladder_plans(&net, &ladder)?;
    let mut pruner = ReversiblePruner::attach(&net, ladder)?;

    let mut frame_rng = Prng::new(3);
    let sample = render_scene(0, SceneContext::Clear, &mut frame_rng);
    let mut scratch = Scratch::new();
    // Warm both the inference scratch and the pruner's segment pools.
    for _ in 0..20 {
        net.predict_with(&sample.input, Some(&plans[0]), &mut scratch)?;
    }
    pruner.set_level(&mut net, 3)?;
    pruner.set_level(&mut net, 0)?;
    let alloc_after_warmup = pruner.allocation_events();

    let mut tick_ns: Vec<f64> = (0..ROUNDTRIPS)
        .map(|_| {
            let t0 = Instant::now();
            net.predict_with(&sample.input, Some(&plans[0]), &mut scratch)
                .expect("inference tick");
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    tick_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let tick_p50 = percentile(&tick_ns, 0.50);

    println!("restore round trips vs one full-density tick ({ROUNDTRIPS} samples each):");
    println!("  tick (density 1.00)    p50 {:9.0} ns", tick_p50);
    for level in 1..=3usize {
        let mut ns: Vec<f64> = (0..ROUNDTRIPS)
            .map(|_| {
                let t0 = Instant::now();
                pruner.set_level(&mut net, level).expect("prune");
                pruner.set_level(&mut net, 0).expect("restore");
                t0.elapsed().as_nanos() as f64
            })
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (p50, p90, p99) = (
            percentile(&ns, 0.50),
            percentile(&ns, 0.90),
            percentile(&ns, 0.99),
        );
        println!(
            "  roundtrip 0->{level}->0     p50 {p50:9.0} ns   p90 {p90:9.0} ns   p99 {p99:9.0} ns   \
             ({:.2}x tick)",
            p50 / tick_p50
        );
    }
    assert_eq!(
        pruner.allocation_events(),
        alloc_after_warmup,
        "warm segment pools never re-allocate across round trips"
    );

    // --- 2. The same storm, one-shot vs amortized restores. ---
    let build = |budget: Option<f64>| -> Result<RuntimeManager, Box<dyn std::error::Error>> {
        let net = models::default_perception_cnn(9)?;
        let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
            .criterion(PruneCriterion::ChannelL2)
            .build(&net)?;
        let envelope = SafetyEnvelope::new(vec![0.6, 0.4, 0.2])?;
        let mut cfg = RuntimeManagerConfig::new(Policy::adaptive(AdaptiveConfig::default()), envelope)
            .defense(FaultDefense::FullChain)
            .frame_seed(23);
        if let Some(b) = budget {
            cfg = cfg.restore_budget(b);
        }
        Ok(RuntimeManager::attach(net, ladder, cfg)?)
    };
    let scenario = ScenarioConfig::new()
        .duration_s(180.0)
        .seed(23)
        .start_segment(SegmentKind::Urban)
        .event_rate_scale(0.4)
        .generate()
        .with_faults(storm_events(&StormConfig::severe(40.0, 140.0), 23));

    println!("\nsevere storm (100 s of faults on a 180 s urban drive), two restore modes:");
    for (label, budget) in [("one-shot", None), ("amortized 200 us/tick", Some(200e-6))] {
        let mut mgr = build(budget)?;
        let r = mgr.run(&scenario)?;
        println!("  {label}:");
        println!(
            "    detected / repaired      {} / {} (of {} injected)",
            r.faults_detected, r.faults_repaired, r.faults_injected
        );
        println!(
            "    restore slices           {}",
            r.trace_event_count("restore-slice")
        );
        println!(
            "    degraded / min-risk      {} / {} ticks",
            r.degraded_ticks(),
            r.minimal_risk_ticks()
        );
        println!("    deadline misses          {}", r.deadline_miss_ticks());
        println!(
            "    silent corruption        {}",
            r.silent_corruption_ticks()
        );
        println!("    safety violations        {}", r.violations);
        println!(
            "    energy saved             {:.1}%",
            100.0 * r.energy_saved_fraction()
        );
        assert_eq!(
            r.trace_event_count("fault-detected"),
            r.faults_detected,
            "trace self-check balances in both modes"
        );
        assert_eq!(r.silent_corruption_ticks(), 0);
    }
    println!("\nthe amortized mode trades a single long restore stall for bounded");
    println!("per-tick slices — same detections, same zero-silent-corruption");
    println!("guarantee, with the climb cost visible as restore-slice events.");
    Ok(())
}
