//! A camera fleet rides out a fault storm while its energy budget
//! shrinks mid-drive: N runtimes cloned from one trained perception
//! CNN (dense weights shared copy-on-write) are stepped concurrently by
//! [`FleetRuntime`], which re-arbitrates the shared budget into
//! per-member level floors every tick. Forty seconds in, a severe fault
//! storm opens on every member while the budget ramps from 100% of the
//! dense draw down to 40% — safety envelopes hold the line, the budget
//! takes what's left.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example fleet_storm -- \
//!     [--members N] [--workers N] [--batched]
//! ```
//!
//! `--workers` caps the persistent step pool (default: machine
//! parallelism; `1` forces serial stepping); `--batched` fuses
//! same-configuration members' forward passes. The example times every
//! tick and prints p50/p95 step latency plus batching occupancy; with
//! `--workers 4` or more on a multi-core host it exits nonzero if the
//! pooled path is more than 5% slower than a serial rerun — the pool
//! must never cost more than it saves at that scale.

use std::time::Instant;

use reprune::nn::models;
use reprune::platform::Joules;
use reprune::prune::{LadderConfig, PruneCriterion};
use reprune::runtime::envelope::SafetyEnvelope;
use reprune::runtime::manager::{RuntimeManager, RuntimeManagerConfig};
use reprune::runtime::policy::{AdaptiveConfig, Policy};
use reprune::runtime::{
    storm_events, FaultDefense, FaultPlan, FleetRunResult, FleetRuntime, FleetTraceEvent,
    StormConfig,
};
use reprune::scenario::{Scenario, ScenarioConfig, SegmentKind};

const UTILITY: [f64; 4] = [0.95, 0.93, 0.88, 0.60];

struct Options {
    members: usize,
    workers: usize,
    batched: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        members: 4,
        workers: std::thread::available_parallelism().map_or(1, usize::from),
        batched: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut int_arg = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--members" => opts.members = int_arg("--members"),
            "--workers" => opts.workers = int_arg("--workers"),
            "--batched" => opts.batched = true,
            other => panic!(
                "unknown argument: {other} (expected --members N / --workers N / --batched)"
            ),
        }
    }
    opts
}

fn build_fleet(
    members: usize,
    workers: usize,
    batched: bool,
) -> Result<FleetRuntime, Box<dyn std::error::Error>> {
    let net = models::default_perception_cnn(9)?;
    let mut fleet = FleetRuntime::new(
        (0..members)
            .map(|i| {
                let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
                    .criterion(PruneCriterion::ChannelL2)
                    .build(&net)?;
                let mgr = RuntimeManager::attach(
                    net.clone(),
                    ladder,
                    RuntimeManagerConfig::new(
                        Policy::adaptive(AdaptiveConfig::default()),
                        SafetyEnvelope::new(vec![0.6, 0.4, 0.2])?,
                    )
                    .defense(FaultDefense::FullChain)
                    .frame_seed(33 + i as u64),
                )?;
                Ok((format!("cam-{i}"), mgr, UTILITY.to_vec()))
            })
            .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?,
    )?;
    fleet.set_workers(workers);
    fleet.set_batched(batched);
    Ok(fleet)
}

/// Drives the whole scenario tick by tick — the same flow as
/// `FleetRuntime::run_with`, opened up so every step can be timed.
/// Returns the run result plus per-tick wall-clock latencies in seconds.
fn drive(
    fleet: &mut FleetRuntime,
    scenario: &Scenario,
    dense: f64,
) -> Result<(FleetRunResult, Vec<f64>), Box<dyn std::error::Error>> {
    for i in 0..fleet.len() {
        let seed = fleet.manager(i).config().frame_seed;
        fleet
            .manager_mut(i)
            .set_fault_plan(Some(FaultPlan::from_scenario(scenario, seed)));
    }
    let dt = scenario.config().dt_s;
    let mut ticks = Vec::with_capacity(scenario.ticks().len());
    let mut latencies = Vec::with_capacity(scenario.ticks().len());
    for tick in scenario.ticks() {
        // The budget schedule: full dense draw until the storm opens,
        // then a linear ramp down to 40% by t = 120 s (an overheating
        // pack, a failing DC bus — the fleet sheds load *during* the
        // storm).
        let frac = if tick.t < 40.0 {
            1.0
        } else if tick.t < 120.0 {
            1.0 - 0.6 * (tick.t - 40.0) / 80.0
        } else {
            0.4
        };
        let started = Instant::now();
        ticks.push(fleet.step_all(tick, dt, Some(Joules(dense * frac)))?);
        latencies.push(started.elapsed().as_secs_f64());
    }
    let mut trace = Vec::new();
    for member in 0..fleet.len() {
        trace.extend(
            fleet
                .manager_mut(member)
                .drain_trace()
                .into_iter()
                .map(|event| FleetTraceEvent { member, event }),
        );
    }
    trace.sort_by(|a, b| {
        a.event
            .t
            .total_cmp(&b.event.t)
            .then(a.member.cmp(&b.member))
            .then(a.event.seq.cmp(&b.event.seq))
    });
    let names = fleet.profiles().iter().map(|p| p.name.clone()).collect();
    Ok((FleetRunResult { names, ticks, trace }, latencies))
}

/// `q`-th percentile (0..=100) of a latency series, in microseconds.
fn percentile_us(latencies: &[f64], q: usize) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = (sorted.len().saturating_sub(1) * q) / 100;
    sorted[idx] * 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args();
    let scenario = ScenarioConfig::new()
        .duration_s(180.0)
        .seed(33)
        .start_segment(SegmentKind::Highway)
        .generate();
    // The storm opens 40 s in and rages for 100 s — every member gets
    // its own fault campaign drawn from this schedule.
    let storm = storm_events(&StormConfig::severe(40.0, 140.0), 33);
    println!(
        "highway drive, 180 s, {}-camera fleet ({} worker(s){}); {} faults over [40 s, 140 s)",
        opts.members,
        opts.workers,
        if opts.batched { ", batched" } else { "" },
        storm.len()
    );
    let scenario = scenario.with_faults(storm);

    let mut fleet = build_fleet(opts.members, opts.workers, opts.batched)?;

    // N members, each carrying live weights + a mirror + a snapshot —
    // yet one shared base copy until a member actually mutates a tensor.
    let storage = fleet.weight_storage_bytes();
    println!(
        "weight storage at launch: {:.1} KiB unique of {:.1} KiB naive ({:.1}x saved)\n",
        storage.unique as f64 / 1024.0,
        storage.total as f64 / 1024.0,
        storage.total as f64 / storage.unique as f64
    );

    let dense: f64 = fleet
        .profiles()
        .iter()
        .map(|p| p.energy_per_level[0].0)
        .sum();
    let (r, latencies) = drive(&mut fleet, &scenario, dense)?;

    // Fleet timeline: budget vs realized draw, sampled every 20 s.
    println!("fleet timeline (budget -> realized, mean level across members):");
    let mut next_sample = 0.0;
    for tick in &r.ticks {
        if tick.t + 1e-9 >= next_sample {
            let mean_level: f64 = tick.members.iter().map(|m| m.level as f64).sum::<f64>()
                / tick.members.len() as f64;
            println!(
                "  t={:6.1} s  budget {:6.2} mJ -> drew {:6.2} mJ  mean level {:.2}{}",
                tick.t,
                tick.budget.map_or(f64::NAN, |b| b.as_millijoules()),
                tick.total_energy.as_millijoules(),
                mean_level,
                if tick.plan.feasible { "" } else { "  [infeasible]" }
            );
            next_sample += 20.0;
        }
    }

    println!("\nper-member summary:");
    for (i, name) in r.names.iter().enumerate() {
        let mean_level = r.mean_level(i);
        let degraded = r
            .ticks
            .iter()
            .filter(|t| {
                t.members[i].record.op_state != reprune::runtime::OperatingState::Normal
            })
            .count();
        println!(
            "  {name}: mean level {mean_level:.2}, violations {}, degraded ticks {degraded}",
            r.member_violations(i)
        );
    }

    let after = fleet.weight_storage_bytes();
    println!("\ncampaign summary:");
    println!("  ticks                  {}", r.ticks.len());
    println!("  fleet violations       {}", r.violations());
    println!("  infeasible ticks       {}", r.infeasible_ticks());
    println!(
        "  total energy           {:.1} J (dense-everywhere would be {:.1} J)",
        r.total_energy().0,
        dense * r.ticks.len() as f64
    );
    println!("  mean fleet utility     {:.3}", r.mean_utility());
    println!(
        "  weight storage now     {:.1} KiB unique (was {:.1} KiB — pruning detached copies)",
        after.unique as f64 / 1024.0,
        storage.unique as f64 / 1024.0
    );
    println!("  merged trace events    {}", r.trace.len());
    let p50 = percentile_us(&latencies, 50);
    let p95 = percentile_us(&latencies, 95);
    println!("  step latency           p50 {p50:.0} us, p95 {p95:.0} us (pool size {})", fleet.pool_size());
    if opts.batched {
        println!(
            "  batching occupancy     {:.2} (fraction of member steps fused)",
            fleet.batch_occupancy()
        );
    }

    // Every violation on record is a fault-era integrity flag (degraded /
    // minimal-risk ticks while the defense chain heals) — never the
    // arbiter pushing a healthy member past its envelope.
    for tick in &r.ticks {
        for m in &tick.members {
            assert!(
                !(m.violation
                    && m.record.op_state == reprune::runtime::OperatingState::Normal),
                "t={}: a healthy member was pushed past its envelope",
                tick.t
            );
        }
    }
    println!("\nthe budget squeeze and the storm overlapped for 80 s, and the");
    println!("arbiter still never asked a *healthy* camera for more pruning than");
    println!("its safety envelope allows — every flagged tick above came from the");
    println!("fault storm itself, announced while the defense chain healed it.");

    // Performance verdict: at 4+ workers on a multi-core host, the pooled
    // path must not lose more than 5% to a serial rerun of the identical
    // campaign (the persistent pool exists to *remove* per-tick
    // threading overhead).
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if opts.workers >= 4 && cores >= 4 {
        let mut serial = build_fleet(opts.members, 1, opts.batched)?;
        let (serial_r, serial_lat) = drive(&mut serial, &scenario, dense)?;
        assert_eq!(r.ticks, serial_r.ticks, "pooled run must match serial run");
        let serial_p50 = percentile_us(&serial_lat, 50);
        println!(
            "\npooled vs serial p50: {p50:.0} us vs {serial_p50:.0} us ({:.2}x)",
            serial_p50 / p50
        );
        if p50 > serial_p50 * 1.05 {
            eprintln!(
                "FAIL: pooled stepping ({} workers) is >5% slower than serial \
                 (p50 {p50:.0} us vs {serial_p50:.0} us)",
                opts.workers
            );
            std::process::exit(1);
        }
    } else if opts.workers >= 4 {
        println!("\n(pooled-vs-serial verdict skipped: only {cores} core(s) available)");
    }
    Ok(())
}
