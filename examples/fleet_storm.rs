//! A four-camera fleet rides out a fault storm while its energy budget
//! shrinks mid-drive: four runtimes cloned from one trained perception
//! CNN (dense weights shared copy-on-write) are stepped concurrently by
//! [`FleetRuntime`], which re-arbitrates the shared budget into
//! per-member level floors every tick. Forty seconds in, a severe fault
//! storm opens on every member while the budget ramps from 100% of the
//! dense draw down to 40% — safety envelopes hold the line, the budget
//! takes what's left.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example fleet_storm
//! ```

use reprune::nn::models;
use reprune::platform::Joules;
use reprune::prune::{LadderConfig, PruneCriterion};
use reprune::runtime::envelope::SafetyEnvelope;
use reprune::runtime::manager::{RuntimeManager, RuntimeManagerConfig};
use reprune::runtime::policy::{AdaptiveConfig, Policy};
use reprune::runtime::{storm_events, FaultDefense, FleetRuntime, StormConfig};
use reprune::scenario::{ScenarioConfig, SegmentKind};

const FLEET: usize = 4;
const UTILITY: [f64; 4] = [0.95, 0.93, 0.88, 0.60];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ScenarioConfig::new()
        .duration_s(180.0)
        .seed(33)
        .start_segment(SegmentKind::Highway)
        .generate();
    // The storm opens 40 s in and rages for 100 s — every member gets
    // its own fault campaign drawn from this schedule.
    let storm = storm_events(&StormConfig::severe(40.0, 140.0), 33);
    println!(
        "highway drive, 180 s, {FLEET}-camera fleet; {} faults over [40 s, 140 s)",
        storm.len()
    );
    let scenario = scenario.with_faults(storm);

    let net = models::default_perception_cnn(9)?;
    let mut fleet = FleetRuntime::new(
        (0..FLEET)
            .map(|i| {
                let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
                    .criterion(PruneCriterion::ChannelL2)
                    .build(&net)?;
                let mgr = RuntimeManager::attach(
                    net.clone(),
                    ladder,
                    RuntimeManagerConfig::new(
                        Policy::adaptive(AdaptiveConfig::default()),
                        SafetyEnvelope::new(vec![0.6, 0.4, 0.2])?,
                    )
                    .defense(FaultDefense::FullChain)
                    .frame_seed(33 + i as u64),
                )?;
                Ok((format!("cam-{i}"), mgr, UTILITY.to_vec()))
            })
            .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?,
    )?;

    // Four members, each carrying live weights + a mirror + a snapshot —
    // yet one shared base copy until a member actually mutates a tensor.
    let storage = fleet.weight_storage_bytes();
    println!(
        "weight storage at launch: {:.1} KiB unique of {:.1} KiB naive ({:.1}x saved)\n",
        storage.unique as f64 / 1024.0,
        storage.total as f64 / 1024.0,
        storage.total as f64 / storage.unique as f64
    );

    // The budget schedule: full dense draw until the storm opens, then a
    // linear ramp down to 40% by t = 120 s (an overheating pack, a
    // failing DC bus — the fleet must shed load *during* the storm).
    let dense: f64 = fleet
        .profiles()
        .iter()
        .map(|p| p.energy_per_level[0].0)
        .sum();
    let r = fleet.run_with(&scenario, |tick| {
        let frac = if tick.t < 40.0 {
            1.0
        } else if tick.t < 120.0 {
            1.0 - 0.6 * (tick.t - 40.0) / 80.0
        } else {
            0.4
        };
        Some(Joules(dense * frac))
    })?;

    // Fleet timeline: budget vs realized draw, sampled every 20 s.
    println!("fleet timeline (budget -> realized, mean level across members):");
    let mut next_sample = 0.0;
    for tick in &r.ticks {
        if tick.t + 1e-9 >= next_sample {
            let mean_level: f64 = tick.members.iter().map(|m| m.level as f64).sum::<f64>()
                / tick.members.len() as f64;
            println!(
                "  t={:6.1} s  budget {:6.2} mJ -> drew {:6.2} mJ  mean level {:.2}{}",
                tick.t,
                tick.budget.map_or(f64::NAN, |b| b.as_millijoules()),
                tick.total_energy.as_millijoules(),
                mean_level,
                if tick.plan.feasible { "" } else { "  [infeasible]" }
            );
            next_sample += 20.0;
        }
    }

    println!("\nper-member summary:");
    for (i, name) in r.names.iter().enumerate() {
        let mean_level = r.mean_level(i);
        let degraded = r
            .ticks
            .iter()
            .filter(|t| {
                t.members[i].record.op_state != reprune::runtime::OperatingState::Normal
            })
            .count();
        println!(
            "  {name}: mean level {mean_level:.2}, violations {}, degraded ticks {degraded}",
            r.member_violations(i)
        );
    }

    let after = fleet.weight_storage_bytes();
    println!("\ncampaign summary:");
    println!("  ticks                  {}", r.ticks.len());
    println!("  fleet violations       {}", r.violations());
    println!("  infeasible ticks       {}", r.infeasible_ticks());
    println!(
        "  total energy           {:.1} J (dense-everywhere would be {:.1} J)",
        r.total_energy().0,
        dense * r.ticks.len() as f64
    );
    println!("  mean fleet utility     {:.3}", r.mean_utility());
    println!(
        "  weight storage now     {:.1} KiB unique (was {:.1} KiB — pruning detached copies)",
        after.unique as f64 / 1024.0,
        storage.unique as f64 / 1024.0
    );
    println!("  merged trace events    {}", r.trace.len());

    // Every violation on record is a fault-era integrity flag (degraded /
    // minimal-risk ticks while the defense chain heals) — never the
    // arbiter pushing a healthy member past its envelope.
    for tick in &r.ticks {
        for m in &tick.members {
            assert!(
                !(m.violation
                    && m.record.op_state == reprune::runtime::OperatingState::Normal),
                "t={}: a healthy member was pushed past its envelope",
                tick.t
            );
        }
    }
    println!("\nthe budget squeeze and the storm overlapped for 80 s, and the");
    println!("arbiter still never asked a *healthy* camera for more pruning than");
    println!("its safety envelope allows — every flagged tick above came from the");
    println!("fault storm itself, announced while the defense chain healed it.");
    Ok(())
}
