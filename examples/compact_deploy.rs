//! Deploying a compacted model: prune structured channels, physically
//! remove them, and measure the real wall-clock speedup — while the
//! reversal log keeps the full-capacity model one call away.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example compact_deploy
//! ```

use std::time::Instant;

use reprune::nn::dataset::{SceneContext, SceneDataset};
use reprune::nn::train::{train_classifier, TrainConfig};
use reprune::nn::{metrics, models, serialize};
use reprune::prune::compact::{compact_network, zero_dead_unit_biases};
use reprune::prune::{LadderConfig, PruneCriterion, ReversiblePruner};
use reprune::tensor::Tensor;

fn time_forward(net: &mut reprune::nn::Network, iters: usize) -> f64 {
    let x = Tensor::ones(&[1, 16, 16]);
    for _ in 0..10 {
        net.forward(&x).expect("warmup");
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        net.forward(&x).expect("forward");
    }
    t0.elapsed().as_secs_f64() / iters as f64 * 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SceneDataset::builder()
        .samples(500)
        .seed(33)
        .context(SceneContext::Clear)
        .build();
    let (train, test) = data.split(0.8);
    let mut net = models::default_perception_cnn(12)?;
    train_classifier(&mut net, train.samples(), &TrainConfig { epochs: 8, ..Default::default() })?;
    let dense_acc = metrics::evaluate(&mut net, test.samples())?.accuracy;
    let dense_us = time_forward(&mut net, 200);
    println!(
        "dense model: {} params, {:.1} µs/inference, {:.1}% accuracy",
        net.num_parameters(),
        dense_us,
        100.0 * dense_acc
    );

    // Persist the full model image — the certified baseline in "storage".
    let image = serialize::to_bytes(&net);
    println!("persisted model image: {} bytes (checksummed)", image.len());

    // Prune 50% of channels reversibly, then compact for deployment.
    let ladder = LadderConfig::new(vec![0.0, 0.5])
        .criterion(PruneCriterion::ChannelL2)
        .build(&net)?;
    let masks = ladder.level(1)?.masks.clone();
    let mut pruner = ReversiblePruner::attach(&net, ladder)?;
    pruner.set_level(&mut net, 1)?;

    let mut deploy = net.clone();
    zero_dead_unit_biases(&mut deploy, &masks)?;
    let (mut compacted, report) = compact_network(&deploy)?;
    let compact_acc = metrics::evaluate(&mut compacted, test.samples())?.accuracy;
    let compact_us = time_forward(&mut compacted, 200);
    println!(
        "\ncompacted deploy model: {} params (-{:.0}%), {:.1} µs/inference ({:.2}x), {:.1}% accuracy",
        report.params_after,
        100.0 * report.reduction(),
        compact_us,
        dense_us / compact_us,
        100.0 * compact_acc
    );

    // Risk spike: the ORIGINAL network object restores instantly from the
    // reversal log — no storage round trip, no recompaction needed.
    let t0 = Instant::now();
    pruner.restore_full(&mut net)?;
    pruner.verify_restored(&net)?;
    println!(
        "\nrisk spike: restored full capacity from the reversal log in {:?} (bit-exact)",
        t0.elapsed()
    );
    let restored_acc = metrics::evaluate(&mut net, test.samples())?.accuracy;
    assert_eq!(restored_acc, dense_acc);
    println!(
        "restored accuracy: {:.1}% (identical to dense)",
        100.0 * restored_acc
    );
    Ok(())
}
