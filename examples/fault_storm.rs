//! An urban drive through a fault storm: mid-scenario, bit-flips start
//! hitting the reversal log and the live weights while storage suffers
//! outages and bandwidth collapses. The full defense chain (scrub +
//! shadow repair + snapshot + storage-reload backoff) rides it out;
//! the timeline below shows every degradation-state change as it
//! happens.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example fault_storm
//! ```
//!
//! The process exits nonzero if the drive ends badly: any *silent*
//! corruption, corruption still unrecovered on the final tick, or a
//! deadline-miss rate above 1% of ticks (the storm's Execute overruns
//! legitimately cost a few misses; more than that means the defense
//! chain is not keeping up).

use reprune::nn::models;
use reprune::prune::{LadderConfig, PruneCriterion};
use reprune::runtime::envelope::SafetyEnvelope;
use reprune::runtime::manager::{RuntimeManager, RuntimeManagerConfig};
use reprune::runtime::policy::{AdaptiveConfig, Policy};
use reprune::runtime::{storm_events, FaultDefense, SpillConfig, StormConfig};
use reprune::scenario::{ScenarioConfig, SegmentKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ScenarioConfig::new()
        .duration_s(180.0)
        .seed(23)
        .start_segment(SegmentKind::Urban)
        .event_rate_scale(0.4)
        .generate();
    // The storm opens 40 s in and rages for 100 s.
    let storm = storm_events(&StormConfig::severe(40.0, 140.0), 23);
    println!(
        "urban drive, 180 s; storm of {} faults over [40 s, 140 s):",
        storm.len()
    );
    for ev in &storm {
        println!("  t={:6.1} s  {:?}", ev.start_s, ev.kind);
    }
    let scenario = scenario.with_faults(storm);

    let net = models::default_perception_cnn(9)?;
    let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
        .criterion(PruneCriterion::ChannelL2)
        .build(&net)?;
    let envelope = SafetyEnvelope::new(vec![0.6, 0.4, 0.2])?;
    let mut mgr = RuntimeManager::attach(
        net.clone(),
        ladder,
        RuntimeManagerConfig::new(Policy::adaptive(AdaptiveConfig::default()), envelope)
            .defense(FaultDefense::FullChain)
            .frame_seed(23)
            // Checkpoint the reversal log to a durable (in-memory here)
            // spill device as the drive runs: a crash at any tick could
            // resume from the latest committed mark.
            .spill(SpillConfig::new()),
    )?;
    let r = mgr.run(&scenario)?;

    // Degradation-state timeline: print every transition with the
    // ladder level at that instant.
    println!("\ndegradation timeline:");
    let mut last = None;
    for rec in &r.records {
        if last != Some(rec.op_state) {
            println!(
                "  t={:6.1} s  -> {:<12}  (ladder level {}, est. risk {:.2})",
                rec.t,
                rec.op_state.to_string(),
                rec.level,
                rec.estimated_risk
            );
            last = Some(rec.op_state);
        }
    }

    println!("\ncampaign summary:");
    println!("  faults injected        {}", r.faults_injected);
    println!(
        "  detected / repaired    {} / {}",
        r.faults_detected, r.faults_repaired
    );
    if let Some(mttr) = r.mean_time_to_recover() {
        println!("  mean time to recover   {mttr:.2} s");
    }
    println!(
        "  degraded / min-risk    {} / {} ticks",
        r.degraded_ticks(),
        r.minimal_risk_ticks()
    );
    println!("  deadline misses        {}", r.deadline_miss_ticks());
    println!(
        "  corrupt inferences     {} ({} silent)",
        r.corrupt_inference_ticks(),
        r.silent_corruption_ticks()
    );
    println!("  safety violations      {}", r.violations);
    println!(
        "  energy saved           {:.1}%",
        100.0 * r.energy_saved_fraction()
    );

    // The structured stage-event trace records the same story tick by
    // tick; show the last few events and the pruner's own integrity
    // counters.
    println!("\ntrace tail ({} events recorded, {} dropped):", r.trace.len(), r.trace_dropped);
    for ev in r.trace.iter().rev().take(8).collect::<Vec<_>>().into_iter().rev() {
        println!("  {}", ev.to_json_line());
    }
    let stats = mgr.pruner_integrity();
    println!("\npruner integrity counters:");
    println!("  pops verified          {}", stats.pops_verified);
    println!("  scrub checks           {}", stats.scrub_checks);
    println!("  shadow repairs         {}", stats.repairs);
    println!("  corruption hits        {}", stats.corruption_hits);
    assert_eq!(
        r.trace_event_count("fault-detected"),
        r.faults_detected,
        "the trace records exactly one event per counted detection"
    );

    // Final recovery counters: the cumulative story the spilled commit
    // marks checkpoint every tick (a crash here would resume with these
    // exact numbers).
    let k = mgr.knowledge_state();
    println!("\nfinal recovery counters:");
    println!("  level transitions      {}", k.transitions);
    println!(
        "  faults inj/det/rep     {} / {} / {}",
        k.faults_injected, k.faults_detected, k.faults_repaired
    );
    println!("  recovery latencies (s) {:?}", k.fault_recoveries);
    println!("  snapshot flips         {}", k.snapshot_flips);
    println!("  final state            {:?} at ladder level {}", k.op_state, mgr.current_level());
    if let Some(s) = mgr.spill_stats() {
        println!(
            "  spill                  {} segments, {} marks, {} B, {} torn repaired, \
             {} tail cuts, {} stalled ticks",
            s.segments_spilled,
            s.marks_written,
            s.bytes_appended,
            s.torn_writes_repaired,
            s.tail_truncations,
            s.stalled_ticks
        );
    }

    // Verdict: nonzero exit when the storm actually beat the defense.
    let miss_budget = r.records.len() / 100; // 1% of ticks
    let unrecovered = r.records.last().is_some_and(|rec| rec.corrupt_inference);
    let mut failed = false;
    if r.silent_corruption_ticks() > 0 {
        eprintln!(
            "FAIL: {} silently corrupted inference(s) served",
            r.silent_corruption_ticks()
        );
        failed = true;
    }
    if unrecovered {
        eprintln!("FAIL: corruption still live on the final tick");
        failed = true;
    }
    if r.deadline_miss_ticks() > miss_budget {
        eprintln!(
            "FAIL: {} deadline misses exceed the {miss_budget}-tick budget (1%)",
            r.deadline_miss_ticks()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nevery corrupted tick above was *announced* — the runtime was in a");
    println!("degraded or minimal-risk state while it healed. Re-run with");
    println!("FaultDefense::None to watch the same storm pass unnoticed.");
    Ok(())
}
