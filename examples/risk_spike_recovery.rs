//! A pedestrian steps out: how fast does each restore mechanism get the
//! full network back? Demonstrates the recovery-latency story (F4) on a
//! single engineered scenario with a visible timeline.
//!
//! Run with:
//! ```sh
//! cargo run --release -p reprune --example risk_spike_recovery
//! ```

use reprune::nn::models;
use reprune::prune::{LadderConfig, PruneCriterion};
use reprune::runtime::envelope::SafetyEnvelope;
use reprune::runtime::manager::{RestoreMechanism, RuntimeManager, RuntimeManagerConfig};
use reprune::runtime::policy::Policy;
use reprune::scenario::{ScenarioConfig, SegmentKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An event-dense urban drive; the Oracle policy isolates mechanism
    // latency from estimation effects.
    let scenario = ScenarioConfig::new()
        .duration_s(240.0)
        .seed(5)
        .start_segment(SegmentKind::Urban)
        .event_rate_scale(3.0)
        .generate();
    println!(
        "urban drive: {} events injected, {:.0}% critical ticks\n",
        scenario.events().len(),
        100.0 * scenario.critical_fraction(0.6)
    );

    let net = models::default_perception_cnn(9)?;
    println!(
        "{:<16} {:>11} {:>14} {:>14} {:>12}",
        "mechanism", "violations", "mean recovery", "p95 recovery", "switches"
    );
    for mechanism in [
        RestoreMechanism::DeltaLog,
        RestoreMechanism::Snapshot,
        RestoreMechanism::StorageReload,
    ] {
        let ladder = LadderConfig::new(vec![0.0, 0.3, 0.6, 0.9])
            .criterion(PruneCriterion::ChannelL2)
            .build(&net)?;
        let envelope = SafetyEnvelope::new(vec![0.6, 0.4, 0.2])?;
        let mut mgr = RuntimeManager::attach(
            net.clone(),
            ladder,
            RuntimeManagerConfig::new(Policy::Oracle, envelope)
                .mechanism(mechanism)
                .frame_seed(13),
        )?;
        let r = mgr.run(&scenario)?;
        let fmt_ms = |x: Option<f64>| {
            x.map(|v| format!("{:.1} ms", v * 1e3))
                .unwrap_or_else(|| "instant".into())
        };
        println!(
            "{:<16} {:>11} {:>14} {:>14} {:>12}",
            r.mechanism,
            r.violations,
            fmt_ms(r.mean_recovery_latency()),
            fmt_ms(r.recovery_latency_quantile(0.95)),
            r.transitions
        );
    }
    println!("\nthe reversal log restores within the control period, so the oracle");
    println!("driver never runs a degraded network into a pedestrian event; the");
    println!("storage reload spans multiple 100 ms control ticks and racks up");
    println!("violation time on every spike.");
    Ok(())
}
