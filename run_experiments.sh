#!/usr/bin/env sh
# Regenerates every table and figure of the reproduced evaluation.
# Each binary prints its data and asserts the expected result shape.
set -e
cargo build --release -p reprune-bench
echo "==================== perf_kernels ===================="
# Kernel benchmark trajectory (full mode: asserts the tiled-vs-naive
# speedup and density-latency shape, writes BENCH_kernels.json).
./target/release/perf_kernels
echo
for b in fig1_accuracy_sparsity fig2_latency_energy fig3_timeline \
         fig4_recovery_cdf fig5_ablation fig6_platform_sweep \
         fig7_iterative_pruning fig8_estimator_ablation \
         tab1_restore_cost tab2_memory_overhead tab3_policy_comparison \
         tab4_log_precision tab5_compaction tab6_fleet_budget \
         tab7_odd_enforcement tab8_fault_campaign; do
  echo "==================== $b ===================="
  ./target/release/"$b"
  echo
done
